//! Low-level XML construction helper.

/// Append-only XML builder with a tag stack; keeps generated markup
//  well-formed by construction.
#[derive(Debug, Default)]
pub struct XmlBuilder {
    buf: Vec<u8>,
    stack: Vec<&'static str>,
}

impl XmlBuilder {
    /// Fresh builder with the XML declaration.
    pub fn new() -> XmlBuilder {
        let mut b = XmlBuilder { buf: Vec::with_capacity(4096), stack: Vec::new() };
        b.buf.extend_from_slice(b"<?xml version=\"1.0\"?>\n");
        b
    }

    /// Current output length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before anything was written (never, due to the declaration).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Open `<name>`.
    pub fn open(&mut self, name: &'static str) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.push(b'>');
        self.stack.push(name);
    }

    /// Open `<name a1="v1" …>`.
    pub fn open_attrs(&mut self, name: &'static str, attrs: &[(&str, &str)]) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        for (a, v) in attrs {
            self.buf.push(b' ');
            self.buf.extend_from_slice(a.as_bytes());
            self.buf.extend_from_slice(b"=\"");
            escape_attr(v.as_bytes(), &mut self.buf);
            self.buf.push(b'"');
        }
        self.buf.push(b'>');
        self.stack.push(name);
    }

    /// Emit a bachelor tag `<name a1="v1"…/>`.
    pub fn bachelor(&mut self, name: &'static str, attrs: &[(&str, &str)]) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        for (a, v) in attrs {
            self.buf.push(b' ');
            self.buf.extend_from_slice(a.as_bytes());
            self.buf.extend_from_slice(b"=\"");
            escape_attr(v.as_bytes(), &mut self.buf);
            self.buf.push(b'"');
        }
        self.buf.extend_from_slice(b"/>");
    }

    /// Close the innermost open tag.
    pub fn close(&mut self) {
        let name = self.stack.pop().expect("close without open");
        self.buf.extend_from_slice(b"</");
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.push(b'>');
    }

    /// Escaped character data.
    pub fn text(&mut self, text: &str) {
        escape_text(text.as_bytes(), &mut self.buf);
    }

    /// `<name>text</name>` in one call.
    pub fn leaf(&mut self, name: &'static str, text: &str) {
        self.open(name);
        self.text(text);
        self.close();
    }

    /// Raw newline (layout only; PCDATA whitespace is harmless in the
    /// generated schemas' mixed/text content positions — only used between
    /// records inside elements whose content allows text).
    pub fn newline(&mut self) {
        self.buf.push(b'\n');
    }

    /// Finish: closes any remaining tags and returns the document.
    pub fn finish(mut self) -> Vec<u8> {
        while !self.stack.is_empty() {
            self.close();
        }
        self.buf
    }

    /// Remaining open depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

fn escape_text(t: &[u8], out: &mut Vec<u8>) {
    for &b in t {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            _ => out.push(b),
        }
    }
}

fn escape_attr(t: &[u8], out: &mut Vec<u8>) {
    for &b in t {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'"' => out.extend_from_slice(b"&quot;"),
            // '>' stays raw: legal in attribute values, and exercises the
            // prefilter's quote-aware tag-end scan.
            _ => out.push(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_wellformed_markup() {
        let mut b = XmlBuilder::new();
        b.open("site");
        b.open_attrs("item", &[("id", "i1"), ("note", "a&b")]);
        b.leaf("name", "T<V");
        b.bachelor("incategory", &[("category", "c3")]);
        b.close();
        let doc = b.finish();
        let s = String::from_utf8(doc).unwrap();
        assert!(s.contains("<item id=\"i1\" note=\"a&amp;b\">"));
        assert!(s.contains("<name>T&lt;V</name>"));
        assert!(s.contains("<incategory category=\"c3\"/>"));
        assert!(s.ends_with("</item></site>"));
    }

    #[test]
    fn finish_closes_stack() {
        let mut b = XmlBuilder::new();
        b.open("a");
        b.open("b");
        assert_eq!(b.depth(), 2);
        let doc = b.finish();
        assert!(String::from_utf8(doc).unwrap().ends_with("</b></a>"));
    }

    #[test]
    #[should_panic(expected = "close without open")]
    fn close_unbalanced_panics() {
        let mut b = XmlBuilder::new();
        b.close();
    }
}
