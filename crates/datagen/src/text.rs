//! Seeded word-soup text generation.
//!
//! Deliberately markup-free prose (Shakespeare-flavoured, like the real
//! XMark generator's text) with occasional *marker words* injected at a
//! controlled rate — the strings the evaluation queries look for
//! (`gold`, `NASA`, `PDB`, `Sterilization`, …), so value predicates select
//! a realistic, small fraction of nodes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base vocabulary (from the Shakespeare word list the original XMark
/// generator samples).
const WORDS: &[&str] = &[
    "abandon", "bargain", "cattle", "destroy", "enough", "fortune", "gentle", "honour", "instant",
    "journey", "kindness", "labour", "marriage", "natural", "obtain", "passion", "quarrel",
    "reason", "silver", "temper", "unfold", "virtue", "wonder", "yonder", "against", "banish",
    "command", "danger", "embrace", "feather", "garden", "heaven", "inform", "justice", "kingdom",
    "letter", "mother", "nothing", "office", "prayer", "quality", "remember", "soldier", "thunder",
    "uncle", "valiant", "weather", "youth", "brother", "counsel", "daughter", "evening", "father",
    "glory", "hunger", "island", "jealous", "knight", "lantern", "mercy", "needle", "orchard",
    "palace", "quiet", "river", "sorrow", "tongue", "urgent", "vessel", "window", "yellow", "zeal",
];

/// A seeded text generator.
#[derive(Debug, Clone)]
pub struct TextGen {
    rng: SmallRng,
    /// Marker words and their injection rate (one in `marker_rate` words
    /// may be a marker).
    markers: Vec<&'static str>,
    marker_rate: u32,
}

impl TextGen {
    /// New generator; `markers` are injected roughly once per
    /// `marker_rate` words (0 disables injection).
    pub fn new(seed: u64, markers: Vec<&'static str>, marker_rate: u32) -> TextGen {
        TextGen { rng: SmallRng::seed_from_u64(seed), markers, marker_rate }
    }

    /// Plain generator without markers.
    pub fn plain(seed: u64) -> TextGen {
        TextGen::new(seed, Vec::new(), 0)
    }

    /// One random word.
    pub fn word(&mut self) -> &'static str {
        if self.marker_rate > 0
            && !self.markers.is_empty()
            && self.rng.gen_range(0..self.marker_rate) == 0
        {
            self.markers[self.rng.gen_range(0..self.markers.len())]
        } else {
            WORDS[self.rng.gen_range(0..WORDS.len())]
        }
    }

    /// A sentence of `min..=max` words.
    pub fn sentence(&mut self, min: usize, max: usize) -> String {
        let n = self.rng.gen_range(min..=max.max(min));
        let mut s = String::with_capacity(n * 8);
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(self.word());
        }
        s
    }

    /// A random integer rendered as text.
    pub fn number(&mut self, lo: u64, hi: u64) -> String {
        self.rng.gen_range(lo..=hi).to_string()
    }

    /// A date like `10/22/2006`.
    pub fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.gen_range(1..=12u32),
            self.rng.gen_range(1..=28u32),
            self.rng.gen_range(1998..=2007u32)
        )
    }

    /// Random in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n.max(1))
    }

    /// Bernoulli with probability `pct`%.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.rng.gen_range(0..100) < pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TextGen::plain(42);
        let mut b = TextGen::plain(42);
        assert_eq!(a.sentence(5, 10), b.sentence(5, 10));
        assert_eq!(a.number(0, 1000), b.number(0, 1000));
        let mut c = TextGen::plain(43);
        // Overwhelmingly likely to differ.
        assert_ne!(
            (0..20).map(|_| a.word()).collect::<Vec<_>>(),
            (0..20).map(|_| c.word()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn markers_injected_at_rate() {
        let mut g = TextGen::new(7, vec!["gold"], 10);
        let text: Vec<&str> = (0..2000).map(|_| g.word()).collect();
        let hits = text.iter().filter(|&&w| w == "gold").count();
        // Expect ~200; allow a generous band.
        assert!(hits > 100 && hits < 350, "got {hits}");
    }

    #[test]
    fn no_markup_characters_in_words() {
        let mut g = TextGen::new(1, vec!["NASA", "PDB"], 3);
        for _ in 0..500 {
            let w = g.word();
            assert!(!w.contains('<') && !w.contains('&') && !w.contains('>'));
        }
    }

    #[test]
    fn sentence_bounds() {
        let mut g = TextGen::plain(9);
        for _ in 0..50 {
            let s = g.sentence(3, 6);
            let n = s.split(' ').count();
            assert!((3..=6).contains(&n));
        }
    }
}
