//! MEDLINE-like citation-set generator.
//!
//! Reproduces the properties of the real MEDLINE corpus that drive the
//! paper's Table II observations:
//!
//! * **long tag names** (`DatesAssociatedWithName`, `CopyrightInformation`)
//!   → larger average forward shifts than on XMark,
//! * **mostly optional elements** → initial jump offsets are almost never
//!   available (the paper measures 0.00% for M1–M4) — except on the spine
//!   `PMID, DateCreated` which is required, giving M5-style queries their
//!   jumps,
//! * **elements declared but absent from the instance** (`CollectionTitle`
//!   inside the never-generated `Book`): query M1 scans the whole input and
//!   outputs nothing,
//! * rare marker values (`PDB`, `NASA`, `Hippocrates`, `Oct2006`,
//!   `Sterilization`) so the M2–M5 predicates select small fractions.

use crate::text::TextGen;
use crate::util::XmlBuilder;
use crate::GenOptions;

/// The MEDLINE-like DTD.
pub const MEDLINE_DTD: &str = r#"<!DOCTYPE MedlineCitationSet [
<!ELEMENT MedlineCitationSet (MedlineCitation*)>
<!ELEMENT MedlineCitation (PMID, DateCreated, DateCompleted?, Article, MedlineJournalInfo, ChemicalList?, MeshHeadingList?, PersonalNameSubjectList?, CopyrightInformation?, GeneralNote?)>
<!ATTLIST MedlineCitation Owner CDATA #IMPLIED Status CDATA #IMPLIED>
<!ELEMENT PMID (#PCDATA)>
<!ELEMENT DateCreated (Year, Month, Day)>
<!ELEMENT DateCompleted (Year, Month, Day)>
<!ELEMENT Year (#PCDATA)>
<!ELEMENT Month (#PCDATA)>
<!ELEMENT Day (#PCDATA)>
<!ELEMENT Article (Journal, ArticleTitle, Pagination?, Abstract?, AuthorList?, Language, DataBankList?, Book?)>
<!ELEMENT Journal (ISSN?, JournalIssue, Title?)>
<!ELEMENT ISSN (#PCDATA)>
<!ELEMENT JournalIssue (Volume?, Issue?, PubDate)>
<!ELEMENT Volume (#PCDATA)>
<!ELEMENT Issue (#PCDATA)>
<!ELEMENT PubDate (Year, Month?, Day?)>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT ArticleTitle (#PCDATA)>
<!ELEMENT Pagination (MedlinePgn)>
<!ELEMENT MedlinePgn (#PCDATA)>
<!ELEMENT Abstract (AbstractText, CopyrightInformation?)>
<!ELEMENT AbstractText (#PCDATA)>
<!ELEMENT AuthorList (Author+)>
<!ELEMENT Author (LastName, ForeName?, Initials?)>
<!ELEMENT LastName (#PCDATA)>
<!ELEMENT ForeName (#PCDATA)>
<!ELEMENT Initials (#PCDATA)>
<!ELEMENT Language (#PCDATA)>
<!ELEMENT DataBankList (DataBank+)>
<!ELEMENT DataBank (DataBankName, AccessionNumberList?)>
<!ELEMENT DataBankName (#PCDATA)>
<!ELEMENT AccessionNumberList (AccessionNumber+)>
<!ELEMENT AccessionNumber (#PCDATA)>
<!ELEMENT Book (CollectionTitle?, Isbn?)>
<!ELEMENT CollectionTitle (#PCDATA)>
<!ELEMENT Isbn (#PCDATA)>
<!ELEMENT MedlineJournalInfo (Country?, MedlineTA, NlmUniqueID?)>
<!ELEMENT Country (#PCDATA)>
<!ELEMENT MedlineTA (#PCDATA)>
<!ELEMENT NlmUniqueID (#PCDATA)>
<!ELEMENT ChemicalList (Chemical+)>
<!ELEMENT Chemical (RegistryNumber, NameOfSubstance)>
<!ELEMENT RegistryNumber (#PCDATA)>
<!ELEMENT NameOfSubstance (#PCDATA)>
<!ELEMENT MeshHeadingList (MeshHeading+)>
<!ELEMENT MeshHeading (DescriptorName, QualifierName*)>
<!ELEMENT DescriptorName (#PCDATA)>
<!ELEMENT QualifierName (#PCDATA)>
<!ELEMENT PersonalNameSubjectList (PersonalNameSubject+)>
<!ELEMENT PersonalNameSubject (LastName, ForeName?, DatesAssociatedWithName?, TitleAssociatedWithName?)>
<!ELEMENT DatesAssociatedWithName (#PCDATA)>
<!ELEMENT TitleAssociatedWithName (#PCDATA)>
<!ELEMENT CopyrightInformation (#PCDATA)>
<!ELEMENT GeneralNote (#PCDATA)>
]>"#;

/// Generate a MEDLINE-like document of roughly `opts.target_bytes` bytes.
pub fn generate(opts: GenOptions) -> Vec<u8> {
    let mut g =
        TextGen::new(opts.seed, vec!["NASA", "Sterilization", "PDB", "SWISSPROT", "GENBANK"], 80);
    let mut b = XmlBuilder::new();
    let target = opts.target_bytes.max(4096);
    let mut pmid = 10_000_000u64;

    b.open("MedlineCitationSet");
    while b.len() < target {
        citation(&mut b, &mut g, &mut pmid);
    }
    b.finish()
}

fn date(b: &mut XmlBuilder, g: &mut TextGen, tag: &'static str, full: bool) {
    b.open(tag);
    b.leaf("Year", &g.number(1990, 2006));
    if full || g.chance(80) {
        b.leaf("Month", &g.number(1, 12));
        if full || g.chance(80) {
            b.leaf("Day", &g.number(1, 28));
        }
    }
    b.close();
}

fn citation(b: &mut XmlBuilder, g: &mut TextGen, pmid: &mut u64) {
    *pmid += 1;
    b.open_attrs(
        "MedlineCitation",
        &[("Owner", "NLM"), ("Status", if g.chance(70) { "MEDLINE" } else { "In-Process" })],
    );
    b.leaf("PMID", &pmid.to_string());
    // DateCreated is required with a full (Year, Month, Day): this is the
    // mandatory spine that M5-style queries jump over.
    date(b, g, "DateCreated", true);
    if g.chance(55) {
        date(b, g, "DateCompleted", true);
    }

    b.open("Article");
    b.open("Journal");
    if g.chance(70) {
        b.leaf("ISSN", &format!("{:04}-{:04}", g.number(0, 9999), g.number(0, 9999)));
    }
    b.open("JournalIssue");
    if g.chance(80) {
        b.leaf("Volume", &g.number(1, 120));
    }
    if g.chance(70) {
        b.leaf("Issue", &g.number(1, 12));
    }
    b.open("PubDate");
    b.leaf("Year", &g.number(1990, 2006));
    if g.chance(60) {
        b.leaf("Month", &g.number(1, 12));
    }
    b.close(); // PubDate
    b.close(); // JournalIssue
    if g.chance(85) {
        b.leaf("Title", &g.sentence(3, 9));
    }
    b.close(); // Journal
    b.leaf("ArticleTitle", &g.sentence(6, 18));
    if g.chance(60) {
        b.open("Pagination");
        b.leaf("MedlinePgn", &format!("{}-{}", g.number(1, 800), g.number(801, 999)));
        b.close();
    }
    if g.chance(65) {
        b.open("Abstract");
        b.leaf("AbstractText", &g.sentence(60, 180));
        if g.chance(10) {
            b.leaf("CopyrightInformation", &g.sentence(4, 12));
        }
        b.close();
    }
    if g.chance(85) {
        b.open("AuthorList");
        for _ in 0..(1 + g.below(5)) {
            b.open("Author");
            b.leaf("LastName", if g.chance(1) { "Hippocrates" } else { g.word() });
            if g.chance(80) {
                b.leaf("ForeName", g.word());
            }
            if g.chance(70) {
                b.leaf("Initials", "JR");
            }
            b.close();
        }
        b.close();
    }
    b.leaf("Language", "eng");
    if g.chance(12) {
        b.open("DataBankList");
        for _ in 0..(1 + g.below(2)) {
            b.open("DataBank");
            b.leaf("DataBankName", if g.chance(30) { "PDB" } else { "GENBANK" });
            if g.chance(80) {
                b.open("AccessionNumberList");
                for _ in 0..(1 + g.below(4)) {
                    b.leaf("AccessionNumber", &format!("{}{}", g.word(), g.number(100, 99999)));
                }
                b.close();
            }
            b.close();
        }
        b.close();
    }
    // Book (with CollectionTitle) is declared in the DTD but never
    // generated: query M1 matches nothing, as in the paper.
    b.close(); // Article

    b.open("MedlineJournalInfo");
    if g.chance(80) {
        b.leaf("Country", "UNITED STATES");
    }
    b.leaf("MedlineTA", &g.sentence(1, 4));
    if g.chance(70) {
        b.leaf("NlmUniqueID", &g.number(100000, 9999999));
    }
    b.close();

    if g.chance(35) {
        b.open("ChemicalList");
        for _ in 0..(1 + g.below(4)) {
            b.open("Chemical");
            b.leaf("RegistryNumber", &g.number(0, 999999));
            b.leaf("NameOfSubstance", &g.sentence(1, 4));
            b.close();
        }
        b.close();
    }
    if g.chance(60) {
        b.open("MeshHeadingList");
        for _ in 0..(2 + g.below(8)) {
            b.open("MeshHeading");
            b.leaf("DescriptorName", &g.sentence(1, 3));
            for _ in 0..g.below(3) {
                b.leaf("QualifierName", g.word());
            }
            b.close();
        }
        b.close();
    }
    if g.chance(3) {
        b.open("PersonalNameSubjectList");
        for _ in 0..(1 + g.below(2)) {
            b.open("PersonalNameSubject");
            b.leaf("LastName", if g.chance(8) { "Hippocrates" } else { g.word() });
            if g.chance(60) {
                b.leaf("ForeName", g.word());
            }
            if g.chance(50) {
                b.leaf("DatesAssociatedWithName", if g.chance(15) { "Oct2006" } else { "Jan2001" });
            }
            if g.chance(60) {
                b.leaf("TitleAssociatedWithName", &g.sentence(2, 6));
            }
            b.close();
        }
        b.close();
    }
    if g.chance(8) {
        b.leaf("CopyrightInformation", &g.sentence(5, 14));
    }
    if g.chance(10) {
        b.leaf("GeneralNote", &g.sentence(4, 10));
    }
    b.close(); // MedlineCitation
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_dtd::{Dtd, DtdAutomaton};
    use smpx_xml::{check_well_formed, Token, Tokenizer};

    #[test]
    fn dtd_parses_nonrecursive() {
        let dtd = Dtd::parse(MEDLINE_DTD.as_bytes()).unwrap();
        assert_eq!(dtd.root(), "MedlineCitationSet");
        assert!(!dtd.is_recursive());
    }

    #[test]
    fn collection_title_declared_but_never_generated() {
        let dtd = Dtd::parse(MEDLINE_DTD.as_bytes()).unwrap();
        assert!(dtd.get("CollectionTitle").is_some());
        let doc = generate(GenOptions::sized(200_000));
        let text = String::from_utf8(doc).unwrap();
        assert!(!text.contains("<CollectionTitle"), "M1 must match nothing");
        assert!(!text.contains("<Book"), "Book is never generated");
    }

    #[test]
    fn generated_document_is_dtd_valid() {
        let dtd = Dtd::parse(MEDLINE_DTD.as_bytes()).unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        let doc = generate(GenOptions::sized(40_000));
        check_well_formed(&doc).unwrap();
        let mut tokens: Vec<(String, bool)> = Vec::new();
        for t in Tokenizer::new(&doc) {
            match t.unwrap() {
                Token::StartTag { name, self_closing, .. } => {
                    let n = String::from_utf8(name.to_vec()).unwrap();
                    tokens.push((n.clone(), false));
                    if self_closing {
                        tokens.push((n, true));
                    }
                }
                Token::EndTag { name, .. } => {
                    tokens.push((String::from_utf8(name.to_vec()).unwrap(), true));
                }
                _ => {}
            }
        }
        assert!(auto.accepts(&tokens));
    }

    #[test]
    fn markers_present_at_scale() {
        let doc = String::from_utf8(generate(GenOptions::sized(400_000))).unwrap();
        assert!(doc.contains("PDB"));
        assert!(doc.contains("<PersonalNameSubjectList>"));
        assert!(doc.contains("<DateCompleted>"));
    }

    #[test]
    fn deterministic_and_size_targeted() {
        let a = generate(GenOptions::sized(50_000).with_seed(1));
        let b = generate(GenOptions::sized(50_000).with_seed(1));
        assert_eq!(a, b);
        assert!(a.len() >= 50_000 && a.len() < 100_000);
    }
}
