//! Protein-Sequence-like database generator (the paper's third dataset;
//! its results live in the technical report the paper cites as \[27\]).
//!
//! Characteristics: very large leaf text (sequences), a flat record
//! structure, and medium-length tag names — between XMark and MEDLINE in
//! shift behaviour.

use crate::text::TextGen;
use crate::util::XmlBuilder;
use crate::GenOptions;

/// The ProteinDatabase-like DTD.
pub const PROTEIN_DTD: &str = r#"<!DOCTYPE ProteinDatabase [
<!ELEMENT ProteinDatabase (ProteinEntry*)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+, genetics?, classification?, keywords?, feature*, summary, sequence)>
<!ATTLIST ProteinEntry id ID #REQUIRED>
<!ELEMENT header (uid, accession+, created_date, seq_rev_date)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created_date (#PCDATA)>
<!ELEMENT seq_rev_date (#PCDATA)>
<!ELEMENT protein (name, classname?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT classname (#PCDATA)>
<!ELEMENT organism (source, common?, formal)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo?)>
<!ELEMENT refinfo (authors, citation, year)>
<!ATTLIST refinfo refid CDATA #REQUIRED>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT accinfo (mol-type?, seq-spec?)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT genetics (gene?, codon?)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT codon (#PCDATA)>
<!ELEMENT classification (superfamily?)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT keywords (keyword+)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (feature-type, description?, seq-spec)>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
]>"#;

/// Generate a ProteinDatabase-like document of roughly
/// `opts.target_bytes` bytes.
pub fn generate(opts: GenOptions) -> Vec<u8> {
    let mut g = TextGen::new(opts.seed, vec!["kinase", "globin"], 50);
    let mut b = XmlBuilder::new();
    let target = opts.target_bytes.max(4096);
    let mut uid = 700_000u64;

    b.open("ProteinDatabase");
    while b.len() < target {
        entry(&mut b, &mut g, &mut uid);
    }
    b.finish()
}

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

fn sequence_text(g: &mut TextGen, len: usize) -> String {
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        s.push(AMINO[g.below(AMINO.len())] as char);
    }
    s
}

fn entry(b: &mut XmlBuilder, g: &mut TextGen, uid: &mut u64) {
    *uid += 1;
    let id = format!("PE{uid}");
    b.open_attrs("ProteinEntry", &[("id", &id)]);

    b.open("header");
    b.leaf("uid", &uid.to_string());
    for _ in 0..(1 + g.below(2)) {
        b.leaf("accession", &format!("A{}", g.number(10000, 99999)));
    }
    b.leaf("created_date", &g.date());
    b.leaf("seq_rev_date", &g.date());
    b.close();

    b.open("protein");
    b.leaf("name", &g.sentence(1, 4));
    if g.chance(50) {
        b.leaf("classname", g.word());
    }
    b.close();

    b.open("organism");
    b.leaf("source", &g.sentence(1, 3));
    if g.chance(40) {
        b.leaf("common", g.word());
    }
    b.leaf("formal", &g.sentence(2, 3));
    b.close();

    for _ in 0..(1 + g.below(3)) {
        b.open("reference");
        let refid = format!("R{}", g.number(1, 9999));
        b.open_attrs("refinfo", &[("refid", &refid)]);
        b.open("authors");
        for _ in 0..(1 + g.below(4)) {
            b.leaf("author", g.word());
        }
        b.close();
        b.leaf("citation", &g.sentence(4, 10));
        b.leaf("year", &g.number(1980, 2006));
        b.close();
        if g.chance(40) {
            b.open("accinfo");
            if g.chance(70) {
                b.leaf("mol-type", "complete");
            }
            if g.chance(50) {
                b.leaf("seq-spec", &format!("1-{}", g.number(50, 900)));
            }
            b.close();
        }
        b.close();
    }

    if g.chance(45) {
        b.open("genetics");
        if g.chance(80) {
            b.leaf("gene", g.word());
        }
        b.close();
    }
    if g.chance(55) {
        b.open("classification");
        b.leaf("superfamily", &g.sentence(1, 3));
        b.close();
    }
    if g.chance(60) {
        b.open("keywords");
        for _ in 0..(1 + g.below(4)) {
            b.leaf("keyword", g.word());
        }
        b.close();
    }
    for _ in 0..g.below(4) {
        b.open("feature");
        b.leaf("feature-type", g.word());
        if g.chance(60) {
            b.leaf("description", &g.sentence(2, 6));
        }
        b.leaf("seq-spec", &format!("{}-{}", g.number(1, 100), g.number(101, 900)));
        b.close();
    }

    let seq_len = 120 + g.below(900);
    b.open("summary");
    b.leaf("length", &seq_len.to_string());
    b.leaf("type", "complete");
    b.close();
    b.leaf("sequence", &sequence_text(g, seq_len));
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_dtd::{Dtd, DtdAutomaton};
    use smpx_xml::{check_well_formed, Token, Tokenizer};

    #[test]
    fn dtd_parses_nonrecursive() {
        let dtd = Dtd::parse(PROTEIN_DTD.as_bytes()).unwrap();
        assert_eq!(dtd.root(), "ProteinDatabase");
        assert!(!dtd.is_recursive());
        DtdAutomaton::build(&dtd).unwrap();
    }

    #[test]
    fn generated_document_is_dtd_valid() {
        let dtd = Dtd::parse(PROTEIN_DTD.as_bytes()).unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        let doc = generate(GenOptions::sized(30_000));
        check_well_formed(&doc).unwrap();
        let mut tokens: Vec<(String, bool)> = Vec::new();
        for t in Tokenizer::new(&doc) {
            match t.unwrap() {
                Token::StartTag { name, self_closing, .. } => {
                    let n = String::from_utf8(name.to_vec()).unwrap();
                    tokens.push((n.clone(), false));
                    if self_closing {
                        tokens.push((n, true));
                    }
                }
                Token::EndTag { name, .. } => {
                    tokens.push((String::from_utf8(name.to_vec()).unwrap(), true));
                }
                _ => {}
            }
        }
        assert!(auto.accepts(&tokens));
    }

    #[test]
    fn deterministic_and_sized() {
        let a = generate(GenOptions::sized(60_000).with_seed(3));
        let b = generate(GenOptions::sized(60_000).with_seed(3));
        assert_eq!(a, b);
        assert!(a.len() >= 60_000 && a.len() < 120_000);
    }

    #[test]
    fn sequences_dominate_leaf_text() {
        let doc = String::from_utf8(generate(GenOptions::sized(50_000))).unwrap();
        assert!(doc.contains("<sequence>"));
        assert!(doc.contains("<ProteinEntry id=\"PE"));
    }
}
