//! Multi-query prefiltering: one SMP pass serving a whole query workload
//! (the publish/subscribe scenario of the paper's introduction — systems
//! like XFilter/YFilter evaluate many queries at once; SMP supports this
//! by projecting for the union of the queries' path sets).

use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_engine::InMemEngine;
use smpx_paths::extract::extract_paths;
use smpx_paths::xpath::XPath;
use smpx_paths::PathSet;

const QUERIES: &[&str] = &[
    "/site/regions/australia/item/description",
    "/site/people/person/name",
    "/site/closed_auctions/closed_auction[price >= 40]/price",
    "/site/open_auctions/open_auction/bidder[1]/increase/text()",
    "/site/open_auctions/open_auction/bidder[last()]/increase/text()",
];

#[test]
fn one_projection_serves_all_queries() {
    let doc = xmark::generate(GenOptions::sized(256 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();

    // Union of all extracted path sets.
    let mut union = PathSet::new(vec![]);
    let parsed: Vec<XPath> = QUERIES.iter().map(|q| XPath::parse(q).unwrap()).collect();
    for q in &parsed {
        union = union.union(&extract_paths(q));
    }
    let mut pf = Prefilter::compile(&dtd, &union).unwrap();
    let (projected, stats) = pf.filter_to_vec(&doc).unwrap();
    assert!(projected.len() < doc.len());
    assert!(stats.char_comp_pct() < 65.0, "still skipping: {:.1}%", stats.char_comp_pct());

    // Every query of the workload answers identically on the projection.
    let engine = InMemEngine::unlimited();
    let orig = engine.load(&doc).unwrap();
    let proj = engine.load(&projected).unwrap();
    for (text, q) in QUERIES.iter().zip(&parsed) {
        assert_eq!(orig.eval(q), proj.eval(q), "query {text}");
    }
}

#[test]
fn union_is_monotone() {
    // The union projection is a superset of each individual projection.
    let doc = xmark::generate(GenOptions::sized(128 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let a = extract_paths(&XPath::parse(QUERIES[0]).unwrap());
    let b = extract_paths(&XPath::parse(QUERIES[1]).unwrap());
    let union = a.union(&b);

    let size = |paths: &PathSet| {
        let mut pf = Prefilter::compile(&dtd, paths).unwrap();
        pf.filter_to_vec(&doc).unwrap().0.len()
    };
    let (sa, sb, su) = (size(&a), size(&b), size(&union));
    assert!(su >= sa && su >= sb, "union {su} >= {sa}, {sb}");
    assert!(su <= sa + sb, "union shares the structural skeleton");
}

#[test]
fn union_dedups_paths() {
    let a = PathSet::parse(&["/*", "/site/people/person/name#"]).unwrap();
    let b = PathSet::parse(&["/*", "/site/people/person/name#", "//description"]).unwrap();
    let u = a.union(&b);
    assert_eq!(u.paths().len(), 3);
}
