//! Multi-query prefiltering: one SMP pass serving a whole query workload
//! (the publish/subscribe scenario of the paper's introduction — systems
//! like XFilter/YFilter evaluate many queries at once; SMP supports this
//! by projecting for the union of the queries' path sets).
//!
//! The registry equivalence suite is the contract of `QueryRegistry`:
//! for every document,
//!
//! * the registry's per-query **verdict** equals what N independently
//!   compiled single-query `Prefilter`s report (their `match_events`
//!   counter), and
//! * the registry's per-query **projection** (`project_query`) is
//!   byte-equal to the independent single-query run's output,
//!
//! across delivery backends {slice, mmap, reader} × threads {0, 1, 4} ×
//! SIMD/scalar modes, and independent of query registration order. The
//! SIMD/scalar toggle (`memscan::force_accel`) is process-global, so the
//! mode-sweeping tests in this binary serialize on [`mode_lock`].

mod common;

use common::{random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::runtime::source::{MmapSource, ReaderSource, SliceSource};
use smpx_core::{MultiVerdict, Prefilter, QueryId, QueryRegistry, RunStats};
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_engine::InMemEngine;
use smpx_paths::extract::extract_paths;
use smpx_paths::xpath::XPath;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::sync::{Mutex, OnceLock};

const QUERIES: &[&str] = &[
    "/site/regions/australia/item/description",
    "/site/people/person/name",
    "/site/closed_auctions/closed_auction[price >= 40]/price",
    "/site/open_auctions/open_auction/bidder[1]/increase/text()",
    "/site/open_auctions/open_auction/bidder[last()]/increase/text()",
];

const THREADS: &[usize] = &[0, 1, 4];
const CHUNK: usize = 64;

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes(mut f: impl FnMut(bool)) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    f(true);
    memscan::force_accel(false);
    f(false);
    memscan::force_accel(env_accel);
}

/// One registry fixture: a DTD, a query workload, a batch of documents.
struct MultiFixture {
    dtd: Dtd,
    queries: Vec<PathSet>,
    docs: Vec<Vec<u8>>,
}

fn random_multi_fixture(seed: u64) -> MultiFixture {
    let mut r = Rand::new(seed);
    let dtd = random_dtd(&mut r);
    let queries = (0..5).map(|_| random_paths(&dtd, &mut r)).collect();
    let docs = (0..7).map(|_| random_doc(&dtd, &mut r)).collect();
    MultiFixture { dtd, queries, docs }
}

fn xmark_fixture() -> MultiFixture {
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("xmark DTD");
    let queries =
        QUERIES.iter().map(|q| extract_paths(&XPath::parse(q).expect("query parses"))).collect();
    let docs = vec![
        xmark::generate(GenOptions::sized(64 * 1024)),
        xmark::generate(GenOptions::sized(160 * 1024)),
    ];
    MultiFixture { dtd, queries, docs }
}

/// The N-independent-single-`Prefilter`s reference: per document, the
/// per-query verdicts and the per-query projected bytes.
fn single_query_reference(fx: &MultiFixture) -> Vec<(Vec<bool>, Vec<Vec<u8>>)> {
    let mut singles: Vec<Prefilter> = fx
        .queries
        .iter()
        .map(|p| Prefilter::compile(&fx.dtd, p).expect("single-query compile"))
        .collect();
    fx.docs
        .iter()
        .map(|doc| {
            let mut verdicts = Vec::new();
            let mut outs = Vec::new();
            for pf in &mut singles {
                let (out, stats) = pf.filter_to_vec(doc).expect("single-query run");
                verdicts.push(stats.match_events > 0);
                outs.push(out);
            }
            (verdicts, outs)
        })
        .collect()
}

fn compile_registry(fx: &MultiFixture) -> smpx_core::MultiPrefilter {
    let mut reg = QueryRegistry::new(fx.dtd.clone());
    for paths in &fx.queries {
        reg.add_paths(paths.clone());
    }
    reg.compile().expect("registry compile")
}

fn assert_verdict(label: &str, doc_idx: usize, got: &MultiVerdict, want: &[bool]) {
    assert_eq!(got.n_queries as usize, want.len(), "{label} doc {doc_idx}: query count");
    for (qi, &w) in want.iter().enumerate() {
        assert_eq!(
            got.is_matched(QueryId(qi as u32)),
            w,
            "{label} doc {doc_idx} query {qi}: verdict diverged from the \
             independently compiled single-query run"
        );
    }
}

/// The full matrix for one fixture in the current SIMD/scalar mode:
/// registry verdict ≡ N single-query runs, per-query projection
/// byte-equality, and parallel ≡ sequential for the multi batch across
/// backends × threads.
fn sweep_multi_fixture(fx: &MultiFixture, label: &str) {
    let want = single_query_reference(fx);
    let mut mpf = compile_registry(fx);

    // Sequential shared pass (slice): verdicts against the reference; the
    // outputs double as the parallel slice reference below.
    let seq: Vec<(Vec<u8>, MultiVerdict, RunStats)> =
        fx.docs.iter().map(|d| mpf.filter_to_vec(d).expect("registry run")).collect();
    for (di, (_, verdict, _)) in seq.iter().enumerate() {
        assert_verdict(&format!("{label}/slice"), di, verdict, &want[di].0);
    }

    // Per-query projections: byte-equal to the independent single runs.
    for qi in 0..fx.queries.len() {
        let mut proj = mpf.project_query(QueryId(qi as u32)).expect("project_query");
        for (di, doc) in fx.docs.iter().enumerate() {
            let (out, stats) = proj.filter_to_vec(doc).expect("projected run");
            assert_eq!(out, want[di].1[qi], "{label} doc {di} query {qi}: projection bytes");
            assert_eq!(
                stats.match_events > 0,
                want[di].0[qi],
                "{label} doc {di} query {qi}: projected verdict"
            );
        }
    }

    // Parallel multi batches: per-document (bytes, verdict, stats) equal
    // the sequential shared pass, in input order, for every backend and
    // thread count.
    let check = |label: &str,
                 threads: usize,
                 got: Vec<(Vec<u8>, MultiVerdict, RunStats)>,
                 seq: &[(Vec<u8>, MultiVerdict, RunStats)]| {
        assert_eq!(got.len(), seq.len(), "{label} t={threads}: result count");
        for (di, ((go, gv, gs), (wo, wv, ws))) in got.iter().zip(seq).enumerate() {
            assert_eq!(go, wo, "{label} t={threads} doc {di}: sink bytes diverged");
            assert_eq!(gv, wv, "{label} t={threads} doc {di}: verdict diverged");
            assert_eq!(gs, ws, "{label} t={threads} doc {di}: stats diverged");
            assert_verdict(&format!("{label} t={threads}"), di, gv, &want[di].0);
        }
    };

    for &t in THREADS {
        let got = mpf
            .run_batch_parallel(fx.docs.iter().map(|d| (SliceSource::new(d), Vec::new())), t)
            .expect("parallel slice batch");
        check(&format!("{label}/slice"), t, got, &seq);
    }

    // Mmap delivery over real temp files.
    let tmps: Vec<TempDoc> = fx.docs.iter().map(|d| TempDoc::new(d)).collect();
    let seq_mmap: Vec<(Vec<u8>, MultiVerdict, RunStats)> = tmps
        .iter()
        .map(|tmp| {
            mpf.run_multi(MmapSource::open(tmp.path()).expect("map doc"), Vec::new())
                .expect("sequential mmap run")
        })
        .collect();
    for &t in THREADS {
        let got = mpf
            .run_batch_parallel(
                tmps.iter().map(|tmp| (MmapSource::open(tmp.path()).expect("map doc"), Vec::new())),
                t,
            )
            .expect("parallel mmap batch");
        check(&format!("{label}/mmap"), t, got, &seq_mmap);
    }

    // Reader delivery (same chunk on both sides).
    let seq_reader: Vec<(Vec<u8>, MultiVerdict, RunStats)> = fx
        .docs
        .iter()
        .map(|d| {
            mpf.run_multi(ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK), Vec::new())
                .expect("sequential reader run")
        })
        .collect();
    for &t in THREADS {
        let got = mpf
            .run_batch_parallel(
                fx.docs.iter().map(|d| {
                    (ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK), Vec::new())
                }),
                t,
            )
            .expect("parallel reader batch");
        check(&format!("{label}/reader"), t, got, &seq_reader);
    }
}

#[test]
fn registry_equals_single_queries_across_backends_threads_and_modes() {
    for seed in [5u64, 23, 71] {
        let fx = random_multi_fixture(seed);
        with_both_modes(|mode| sweep_multi_fixture(&fx, &format!("seed {seed} accel={mode}")));
    }
}

#[test]
fn registry_equals_single_queries_on_xmark() {
    let fx = xmark_fixture();
    with_both_modes(|mode| sweep_multi_fixture(&fx, &format!("xmark accel={mode}")));
}

#[test]
fn registration_order_does_not_change_verdicts() {
    // Shuffled registration must yield identical per-query verdicts once
    // ids are mapped back through the permutation.
    for seed in [9u64, 40] {
        let fx = random_multi_fixture(seed);
        let base = compile_registry(&fx);
        let mut base_runs: Vec<MultiVerdict> = Vec::new();
        {
            let mut mpf = base;
            for d in &fx.docs {
                base_runs.push(mpf.filter_to_vec(d).expect("base run").1);
            }
        }
        // Two non-trivial permutations: reversal and a rotation.
        let n = fx.queries.len();
        let perms: Vec<Vec<usize>> =
            vec![(0..n).rev().collect(), (0..n).map(|i| (i + 2) % n).collect()];
        for perm in perms {
            let mut reg = QueryRegistry::new(fx.dtd.clone());
            for &orig in &perm {
                reg.add_paths(fx.queries[orig].clone());
            }
            let mut mpf = reg.compile().expect("shuffled registry compile");
            for (di, d) in fx.docs.iter().enumerate() {
                let (_, verdict, _) = mpf.filter_to_vec(d).expect("shuffled run");
                for (new_id, &orig) in perm.iter().enumerate() {
                    assert_eq!(
                        verdict.is_matched(QueryId(new_id as u32)),
                        base_runs[di].is_matched(QueryId(orig as u32)),
                        "seed {seed} doc {di}: query {orig} verdict changed under \
                         registration order {perm:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn duplicate_registrations_get_identical_verdicts() {
    let fx = random_multi_fixture(13);
    let mut reg = QueryRegistry::new(fx.dtd.clone());
    let a = reg.add_paths(fx.queries[0].clone());
    let b = reg.add_paths(fx.queries[1].clone());
    let a2 = reg.add_paths(fx.queries[0].clone());
    assert_ne!(a, a2, "duplicates keep distinct ids");
    let mut mpf = reg.compile().expect("registry with duplicates");
    for d in &fx.docs {
        let (_, verdict, _) = mpf.filter_to_vec(d).expect("run");
        assert_eq!(verdict.is_matched(a), verdict.is_matched(a2), "duplicate queries agree");
        let _ = verdict.is_matched(b);
    }
}

#[test]
fn registry_union_projection_serves_all_queries() {
    // The shared pass's projection answers every registered query like
    // the original document (the paper's union-projection guarantee,
    // carried over to the registry automaton).
    let doc = xmark::generate(GenOptions::sized(256 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let parsed: Vec<XPath> = QUERIES.iter().map(|q| XPath::parse(q).unwrap()).collect();
    let mut reg = QueryRegistry::new(dtd);
    for q in &parsed {
        reg.add_paths(extract_paths(q));
    }
    let mut mpf = reg.compile().unwrap();
    let (projected, verdict, stats) = mpf.filter_to_vec(&doc).unwrap();
    assert!(projected.len() < doc.len());
    assert!(stats.char_comp_pct() < 65.0, "still skipping: {:.1}%", stats.char_comp_pct());
    assert_eq!(verdict.n_queries as usize, QUERIES.len());

    let engine = InMemEngine::unlimited();
    let orig = engine.load(&doc).unwrap();
    let proj = engine.load(&projected).unwrap();
    for (qi, (text, q)) in QUERIES.iter().zip(&parsed).enumerate() {
        let on_orig = orig.eval(q);
        assert_eq!(on_orig, proj.eval(q), "query {text}");
        // Verdict soundness: a query with answers must be attributed.
        if !on_orig.is_empty() {
            assert!(verdict.is_matched(QueryId(qi as u32)), "under-attributed {text}");
        }
    }
}

#[test]
fn one_projection_serves_all_queries() {
    let doc = xmark::generate(GenOptions::sized(256 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();

    // Union of all extracted path sets.
    let mut union = PathSet::new(vec![]);
    let parsed: Vec<XPath> = QUERIES.iter().map(|q| XPath::parse(q).unwrap()).collect();
    for q in &parsed {
        union = union.union(&extract_paths(q));
    }
    let mut pf = Prefilter::compile(&dtd, &union).unwrap();
    let (projected, stats) = pf.filter_to_vec(&doc).unwrap();
    assert!(projected.len() < doc.len());
    assert!(stats.char_comp_pct() < 65.0, "still skipping: {:.1}%", stats.char_comp_pct());

    // Every query of the workload answers identically on the projection.
    let engine = InMemEngine::unlimited();
    let orig = engine.load(&doc).unwrap();
    let proj = engine.load(&projected).unwrap();
    for (text, q) in QUERIES.iter().zip(&parsed) {
        assert_eq!(orig.eval(q), proj.eval(q), "query {text}");
    }
}

#[test]
fn union_is_monotone() {
    // The union projection is a superset of each individual projection.
    let doc = xmark::generate(GenOptions::sized(128 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let a = extract_paths(&XPath::parse(QUERIES[0]).unwrap());
    let b = extract_paths(&XPath::parse(QUERIES[1]).unwrap());
    let union = a.union(&b);

    let size = |paths: &PathSet| {
        let mut pf = Prefilter::compile(&dtd, paths).unwrap();
        pf.filter_to_vec(&doc).unwrap().0.len()
    };
    let (sa, sb, su) = (size(&a), size(&b), size(&union));
    assert!(su >= sa && su >= sb, "union {su} >= {sa}, {sb}");
    assert!(su <= sa + sb, "union shares the structural skeleton");
}

#[test]
fn union_dedups_paths() {
    let a = PathSet::parse(&["/*", "/site/people/person/name#"]).unwrap();
    let b = PathSet::parse(&["/*", "/site/people/person/name#", "//description"]).unwrap();
    let u = a.union(&b);
    assert_eq!(u.paths().len(), 3);
}
