//! Property tests for the hand-rolled [`QueryIdSet`] bitset against a
//! naive `BTreeSet<u32>` oracle: random insert/remove/union/iter op
//! sequences must agree on every observable (membership, length,
//! iteration order, intersection), with the id domain biased toward
//! 64-bit block boundaries (63/64/65, 127/128) where off-by-one bugs in
//! block indexing would hide.

use proptest::collection;
use proptest::prelude::*;
use smpx_core::{QueryId, QueryIdSet};
use std::collections::BTreeSet;

/// Ids concentrated on small values and block edges.
fn id_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        0u32..=10,
        61u32..=67,   // around the 0/1 block boundary
        125u32..=130, // around the 1/2 block boundary
        0u32..=300,
    ]
}

/// The observables of a set, gathered the same way from both sides.
fn observe(s: &QueryIdSet) -> (usize, bool, Vec<u32>) {
    let via_iter: Vec<u32> = s.iter().map(|q| q.0).collect();
    let via_vec: Vec<u32> = s.to_vec().into_iter().map(|q| q.0).collect();
    assert_eq!(via_iter, via_vec, "iter() and to_vec() disagree");
    (s.len(), s.is_empty(), via_iter)
}

fn observe_oracle(s: &BTreeSet<u32>) -> (usize, bool, Vec<u32>) {
    (s.len(), s.is_empty(), s.iter().copied().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Replay a random op sequence against the oracle; every op's return
    /// value and every subsequent observable must agree.
    #[test]
    fn idset_matches_btreeset_oracle(
        ops in collection::vec((0u8..3, id_strategy()), 1..120),
    ) {
        let mut set = QueryIdSet::new();
        let mut oracle: BTreeSet<u32> = BTreeSet::new();
        for (op, id) in ops {
            match op {
                0 => prop_assert_eq!(
                    set.insert(QueryId(id)),
                    oracle.insert(id),
                    "insert({id}) freshness"
                ),
                1 => prop_assert_eq!(
                    set.remove(QueryId(id)),
                    oracle.remove(&id),
                    "remove({id}) presence"
                ),
                _ => prop_assert_eq!(
                    set.contains(QueryId(id)),
                    oracle.contains(&id),
                    "contains({id})"
                ),
            }
            prop_assert_eq!(observe(&set), observe_oracle(&oracle));
        }
        set.clear();
        prop_assert!(set.is_empty() && set.to_vec().is_empty());
        prop_assert_eq!(set.len(), 0);
    }

    /// `union_with` is elementwise set union; `intersects` agrees with a
    /// non-empty oracle intersection — in both argument orders.
    #[test]
    fn union_and_intersects_match_oracle(
        a in collection::vec(id_strategy(), 0..80),
        b in collection::vec(id_strategy(), 0..80),
    ) {
        let sa: QueryIdSet = a.iter().map(|&i| QueryId(i)).collect();
        let sb: QueryIdSet = b.iter().map(|&i| QueryId(i)).collect();
        let oa: BTreeSet<u32> = a.iter().copied().collect();
        let ob: BTreeSet<u32> = b.iter().copied().collect();

        let mut u = sa.clone();
        u.union_with(&sb);
        let ou: BTreeSet<u32> = oa.union(&ob).copied().collect();
        prop_assert_eq!(observe(&u), observe_oracle(&ou));

        // Union in the other direction reaches the same set.
        let mut u2 = sb.clone();
        u2.union_with(&sa);
        prop_assert_eq!(u, u2, "union is symmetric");

        let want_intersects = oa.intersection(&ob).next().is_some();
        prop_assert_eq!(sa.intersects(&sb), want_intersects);
        prop_assert_eq!(sb.intersects(&sa), want_intersects);
    }

    /// Equality and hashing see set contents, not representation history:
    /// building the same membership through different op orders (including
    /// removals that shrink the top block away) compares equal.
    #[test]
    fn eq_is_content_based(
        keep in collection::vec(id_strategy(), 1..40),
        junk in collection::vec(200u32..520, 1..20),
    ) {
        let direct: QueryIdSet = keep.iter().map(|&i| QueryId(i)).collect();
        // Same membership via a detour through high ids since removed.
        let mut detour: QueryIdSet = keep.iter().map(|&i| QueryId(i)).collect();
        for &j in &junk {
            detour.insert(QueryId(j));
        }
        for &j in &junk {
            let keep_has = keep.contains(&j);
            if !keep_has {
                detour.remove(QueryId(j));
            }
        }
        for &j in &junk {
            if !keep.contains(&j) {
                prop_assert!(!detour.contains(QueryId(j)));
            }
        }
        prop_assert_eq!(&direct, &detour, "Eq must ignore trailing empty blocks");
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &QueryIdSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&direct), hash(&detour));
    }
}

#[test]
fn block_boundary_ids_roundtrip() {
    // The exact edges of the 64-bit blocks, pinned deterministically on
    // top of the randomized coverage above.
    let edges = [0u32, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192];
    let mut set = QueryIdSet::new();
    for &e in &edges {
        assert!(set.insert(QueryId(e)), "first insert of {e}");
        assert!(!set.insert(QueryId(e)), "second insert of {e}");
    }
    assert_eq!(set.len(), edges.len());
    let got: Vec<u32> = set.iter().map(|q| q.0).collect();
    assert_eq!(got, edges.to_vec(), "iteration is ascending");
    for &e in &edges {
        assert!(set.remove(QueryId(e)), "remove {e}");
        assert!(!set.contains(QueryId(e)));
    }
    assert!(set.is_empty());
    assert_eq!(set, QueryIdSet::new(), "fully drained set equals fresh set");
}
