//! Negative-attribution regressions for the multi-query registry: with
//! queries sharing vocabulary prefixes or nesting inside each other's
//! copy regions, the registry must attribute a document to exactly the
//! queries whose own single-query prefilter would report a match — never
//! more (over-attribution beyond the documented false-positive contract)
//! and never less (under-attribution, which would be a false negative
//! and is forbidden outright).

use smpx_core::{Prefilter, QueryId, QueryRegistry};
use smpx_dtd::Dtd;
use smpx_engine::InMemEngine;
use smpx_paths::xpath::XPath;
use smpx_paths::PathSet;

/// Per-query verdicts from N independently compiled single-query runs —
/// the ground truth every registry verdict is compared against.
fn single_verdicts(dtd: &Dtd, queries: &[&PathSet], doc: &[u8]) -> Vec<bool> {
    queries
        .iter()
        .map(|paths| {
            let mut pf = Prefilter::compile(dtd, paths).expect("single compile");
            let (_, stats) = pf.filter_to_vec(doc).expect("single run");
            stats.match_events > 0
        })
        .collect()
}

fn check(reg: &QueryRegistry, dtd: &Dtd, queries: &[&PathSet], doc: &[u8], want: &[bool]) {
    assert_eq!(
        single_verdicts(dtd, queries, doc),
        want,
        "ground truth drifted: {doc:?}",
        doc = String::from_utf8_lossy(doc)
    );
    let mut mpf = reg.compile().expect("registry compile");
    let (_, verdict, _) = mpf.filter_to_vec(doc).expect("registry run");
    for (qi, &w) in want.iter().enumerate() {
        assert_eq!(
            verdict.is_matched(QueryId(qi as u32)),
            w,
            "query {qi} on {}: registry verdict != single-query verdict",
            String::from_utf8_lossy(doc)
        );
    }
}

/// `<ab` is a proper prefix of `<abc`: the shared automaton's merged
/// frontier vocabulary contains both keywords, and a hit on the longer
/// tag must not leak attribution to the query watching the shorter one
/// (tag names end at `>`, `/`, or whitespace — not at a prefix).
#[test]
fn shared_tag_prefixes_attribute_exactly() {
    let dtd = Dtd::parse(
        br#"<!DOCTYPE r [ <!ELEMENT r (ab|abc)*> <!ELEMENT ab (#PCDATA)> <!ELEMENT abc (#PCDATA)> ]>"#,
    )
    .unwrap();
    let q_ab = PathSet::parse(&["/*", "/r/ab#"]).unwrap();
    let q_abc = PathSet::parse(&["/*", "/r/abc#"]).unwrap();
    let mut reg = QueryRegistry::new(dtd.clone());
    reg.add_paths(q_ab.clone());
    reg.add_paths(q_abc.clone());
    let queries = [&q_ab, &q_abc];

    check(&reg, &dtd, &queries, b"<r><ab>t</ab></r>", &[true, false]);
    check(&reg, &dtd, &queries, b"<r><abc>t</abc></r>", &[false, true]);
    check(&reg, &dtd, &queries, b"<r><abc>t</abc><ab>u</ab></r>", &[true, true]);
    check(&reg, &dtd, &queries, b"<r></r>", &[false, false]);
}

/// One query's hit states lie strictly inside another query's copy-on
/// region. The raw-copy fast path skips the interior, so without the
/// forced-state extension of the merged compile the nested query would
/// never be attributed (under-attribution); conversely an empty copy
/// region must not attribute the nested query (over-attribution).
#[test]
fn hits_nested_inside_another_querys_copy_region() {
    let dtd = Dtd::parse(
        br#"<!DOCTYPE r [ <!ELEMENT r (x*)> <!ELEMENT x (y*)> <!ELEMENT y (#PCDATA)> ]>"#,
    )
    .unwrap();
    let q_x = PathSet::parse(&["/*", "/r/x#"]).unwrap(); // copy-on at <x>
    let q_y = PathSet::parse(&["/*", "//y#"]).unwrap(); // hits inside that region
    let mut reg = QueryRegistry::new(dtd.clone());
    reg.add_paths(q_x.clone());
    reg.add_paths(q_y.clone());
    let queries = [&q_x, &q_y];

    // y occurs only inside x's copy region: both must be attributed.
    check(&reg, &dtd, &queries, b"<r><x><y>k</y></x></r>", &[true, true]);
    // Empty region: only the copy-on query.
    check(&reg, &dtd, &queries, b"<r><x></x></r>", &[true, false]);
    // Deeper nesting, several instances.
    check(&reg, &dtd, &queries, b"<r><x></x><x><y>a</y><y>b</y></x></r>", &[true, true]);
    check(&reg, &dtd, &queries, b"<r></r>", &[false, false]);

    // The union projection is not disturbed by the forced states: it
    // still equals the plain union-compiled single prefilter's output.
    let union = q_x.union(&q_y);
    let mut plain = Prefilter::compile(&dtd, &union).unwrap();
    let mut mpf = reg.compile().unwrap();
    for doc in [&b"<r><x><y>k</y></x></r>"[..], b"<r><x></x></r>", b"<r><x></x><x><y>a</y></x></r>"]
    {
        let (want, _) = plain.filter_to_vec(doc).unwrap();
        let (got, _, _) = mpf.filter_to_vec(doc).unwrap();
        assert_eq!(got, want, "union projection changed by attribution machinery");
    }
}

/// Both directions at once: a query that is itself a copy-on query nested
/// under another copy-on query (//x and /r/x share the same element).
#[test]
fn overlapping_copy_queries_attribute_exactly() {
    let dtd = Dtd::parse(
        br#"<!DOCTYPE r [ <!ELEMENT r (x|z)*> <!ELEMENT x (z*)> <!ELEMENT z (#PCDATA)> ]>"#,
    )
    .unwrap();
    let q_rx = PathSet::parse(&["/*", "/r/x#"]).unwrap();
    let q_z = PathSet::parse(&["/*", "//z#"]).unwrap();
    let q_rz = PathSet::parse(&["/*", "/r/z#"]).unwrap();
    let mut reg = QueryRegistry::new(dtd.clone());
    reg.add_paths(q_rx.clone());
    reg.add_paths(q_z.clone());
    reg.add_paths(q_rz.clone());
    let queries = [&q_rx, &q_z, &q_rz];

    // z only under x: /r/z must stay silent even though `<z` fires inside
    // the copy region and //z matches there.
    check(&reg, &dtd, &queries, b"<r><x><z>k</z></x></r>", &[true, true, false]);
    // z only at top level: //z and /r/z, not /r/x.
    check(&reg, &dtd, &queries, b"<r><z>k</z></r>", &[false, true, true]);
    // Both placements.
    check(&reg, &dtd, &queries, b"<r><z>a</z><x><z>b</z></x></r>", &[true, true, true]);
}

/// The documented false-positive contract: a verdict means "this query's
/// own prefilter would flag the document", which is one-sided — the
/// path-set abstraction drops predicates, so a structurally matching
/// document with no actual answers still gets a positive verdict. The
/// verdict may over-claim answers; it must never miss them.
#[test]
fn verdicts_are_one_sided_false_positives_allowed() {
    let dtd = Dtd::parse(br#"<!DOCTYPE r [ <!ELEMENT r (x*)> <!ELEMENT x (#PCDATA)> ]>"#).unwrap();
    let query = XPath::parse("/r/x[2]").unwrap();
    let mut reg = QueryRegistry::new(dtd);
    let q = reg.add_query("/r/x[2]").unwrap();
    let mut mpf = reg.compile().unwrap();

    // One <x>: no second x, the query has no answers...
    let doc = b"<r><x>only</x></r>";
    let engine = InMemEngine::unlimited();
    assert!(engine.load(doc).unwrap().eval(&query).is_empty(), "no real answer");
    // ...but the structural prefilter flags it: a false positive, allowed.
    let (_, verdict, _) = mpf.filter_to_vec(doc).unwrap();
    assert!(verdict.is_matched(q), "one-sided contract: structural match flags the doc");

    // Two <x>: a real answer — the verdict must flag it (no false negative).
    let doc2 = b"<r><x>a</x><x>b</x></r>";
    assert!(!engine.load(doc2).unwrap().eval(&query).is_empty());
    let (_, verdict2, _) = mpf.filter_to_vec(doc2).unwrap();
    assert!(verdict2.is_matched(q), "false negatives are forbidden");

    // And a document with no <x> at all is not flagged.
    let (_, verdict3, _) = mpf.filter_to_vec(b"<r></r>").unwrap();
    assert!(!verdict3.is_matched(q));
}
