//! Differential tests: the SMP skipping runtime vs the token-level oracle.
//!
//! For random non-recursive DTDs, random valid documents and random
//! projection path sets, the SMP prefilter (which *skips* most of the
//! input) must produce **byte-identical** output to the tokenizing
//! projector (which applies Def. 3 to every token). This is the strongest
//! correctness statement about the whole static-analysis + runtime
//! pipeline, covering Theorem 1's preservation claim operationally.

mod common;

use common::{assert_valid, random_doc, random_dtd, random_paths, Rand};
use smpx_baselines::TokenProjector;
use smpx_core::Prefilter;

/// One differential round for a given seed.
fn check_seed(seed: u64) {
    let mut r = Rand::new(seed);
    let dtd = random_dtd(&mut r);
    let doc = random_doc(&dtd, &mut r);
    assert_valid(&dtd, &doc);
    let paths = random_paths(&dtd, &mut r);

    let oracle = TokenProjector::new(&paths).project(&doc).expect("oracle projects");
    let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let (smp, stats) = pf.filter_to_vec(&doc).expect("filter");

    assert_eq!(
        String::from_utf8_lossy(&smp),
        String::from_utf8_lossy(&oracle),
        "seed {seed}: SMP and oracle disagree\npaths: {paths}\ndoc: {}",
        String::from_utf8_lossy(&doc)
    );
    assert_eq!(stats.output_bytes as usize, smp.len());
}

#[test]
fn smp_equals_oracle_over_500_random_schemas() {
    for seed in 0..500 {
        check_seed(seed);
    }
}

#[test]
fn smp_equals_oracle_on_larger_documents() {
    // Fewer rounds, bigger documents: concatenate many sampled subtrees by
    // re-seeding the sampler, exercising long scans and copy ranges.
    for seed in 1000..1030 {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        // Build a large doc by generating repeatedly until > 64 KiB.
        let mut doc = Vec::new();
        while doc.len() < 64 * 1024 {
            doc = random_doc(&dtd, &mut r);
            if doc.len() < 64 * 1024 {
                // Small sample: widen by retrying with deeper randomness;
                // accept whatever size after 50 attempts.
                let mut tries = 0;
                while doc.len() < 64 * 1024 && tries < 50 {
                    let d2 = random_doc(&dtd, &mut r);
                    if d2.len() > doc.len() {
                        doc = d2;
                    }
                    tries += 1;
                }
                break;
            }
        }
        let paths = random_paths(&dtd, &mut r);
        let oracle = TokenProjector::new(&paths).project(&doc).expect("oracle");
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let (smp, _) = pf.filter_to_vec(&doc).expect("filter");
        assert_eq!(smp, oracle, "seed {seed}, doc len {}", doc.len());
    }
}

#[test]
fn stream_equals_slice_on_random_inputs() {
    for seed in 2000..2120 {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let doc = random_doc(&dtd, &mut r);
        let paths = random_paths(&dtd, &mut r);
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let (slice_out, _) = pf.filter_to_vec(&doc).expect("filter");
        for chunk in [3usize, 17, 64, 4096] {
            let mut out = Vec::new();
            pf.filter_stream(&doc[..], &mut out, chunk).expect("stream");
            assert_eq!(
                out,
                slice_out,
                "seed {seed} chunk {chunk}\ndoc: {}",
                String::from_utf8_lossy(&doc)
            );
        }
    }
}

#[test]
fn smp_output_is_wellformed_when_nonempty() {
    for seed in 3000..3200 {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let doc = random_doc(&dtd, &mut r);
        let paths = random_paths(&dtd, &mut r);
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let (out, _) = pf.filter_to_vec(&doc).expect("filter");
        if !out.is_empty() {
            smpx_xml::check_well_formed(&out).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: projected output not well-formed: {e}\nout: {}",
                    String::from_utf8_lossy(&out)
                )
            });
        }
    }
}
