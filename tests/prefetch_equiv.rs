//! Prefetch ≡ sync-reader equivalence suite for the double-buffered
//! `PrefetchSource`: the overlapped delivery against the synchronous
//! `ReaderSource` across chunk sizes {1, 2, 7, 64, 65, 4096} ×
//! SIMD/scalar modes × executor widths {0, 1, 4} × single/multi-query
//! workloads.
//!
//! What is pinned, per cell of that matrix:
//!
//! * **byte-identical output** — the projected bytes equal the sync
//!   reader's at every chunk size (delivery boundaries never leak into
//!   the projection);
//! * **equal verdicts and match sets** — multi-query verdicts and the
//!   full `RunStats` agree (same chunk on both sides, so even the
//!   chunk-dependent stream counters must match; only `io_window_bytes`
//!   is normalized out, since prefetch honestly reports both slot
//!   buffers on top of the window);
//! * **error propagation** — an injected mid-stream read error surfaces
//!   with the same `CoreError` wording from the `smpx-io` thread as from
//!   the sync path;
//! * **shutdown** — dropping the source early (consumer stops before
//!   EOF) joins the I/O thread promptly: no deadlock, no thread leak.
//!
//! The SIMD/scalar toggle (`memscan::force_accel`) is process-global, so
//! every test in this binary serializes on [`mode_lock`].

mod common;

use common::{random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::runtime::source::{PrefetchSource, ReaderSource};
use smpx_core::{CoreError, Prefilter, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::io::{Cursor, Read};
use std::sync::{Mutex, OnceLock};

/// The issue's chunk sweep: 1/2 (degenerate windows), 7 (odd, straddles
/// everything), 64/65 (lane ± 1), 4096 (page-ish).
const CHUNKS: &[usize] = &[1, 2, 7, 64, 65, 4096];
const THREADS: &[usize] = &[0, 1, 4];
const BATCH: usize = 6;

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes(mut f: impl FnMut(bool)) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    f(true);
    memscan::force_accel(false);
    f(false);
    memscan::force_accel(env_accel);
}

/// Stats with the delivery-owned buffer accounting masked: prefetch
/// reports the window *plus both slot buffers* by design, so that one
/// field is the only legitimate difference from the sync reader.
fn normalized(stats: &RunStats) -> RunStats {
    let mut s = *stats;
    s.io_window_bytes = 0;
    s
}

fn assert_same_run(
    label: &str,
    (sync_out, sync_stats): &(Vec<u8>, RunStats),
    (pre_out, pre_stats): &(Vec<u8>, RunStats),
) {
    assert_eq!(pre_out, sync_out, "{label}: sink bytes diverged");
    assert_eq!(
        normalized(pre_stats),
        normalized(sync_stats),
        "{label}: stats diverged (match sets / counters)"
    );
}

struct Fixture {
    dtd: Dtd,
    paths: PathSet,
    doc: Vec<u8>,
}

fn random_fixture(seed: u64) -> Fixture {
    let mut r = Rand::new(seed);
    let dtd = random_dtd(&mut r);
    let paths = random_paths(&dtd, &mut r);
    // Keep the largest of several generated documents so the doc spans
    // plenty of chunks even at the 4096 end of the sweep.
    let mut doc = random_doc(&dtd, &mut r);
    for _ in 0..6 {
        let d2 = random_doc(&dtd, &mut r);
        if d2.len() > doc.len() {
            doc = d2;
        }
    }
    Fixture { dtd, paths, doc }
}

fn run_sync(pf: &mut Prefilter, doc: &[u8], chunk: usize) -> (Vec<u8>, RunStats) {
    let mut out = Vec::new();
    let stats = pf
        .filter_source(ReaderSource::new(Cursor::new(doc.to_vec()), chunk), &mut out)
        .expect("sync reader filter");
    (out, stats)
}

fn run_prefetch(pf: &mut Prefilter, doc: &[u8], chunk: usize) -> (Vec<u8>, RunStats) {
    let mut out = Vec::new();
    let stats = pf
        .filter_source(PrefetchSource::new(Cursor::new(doc.to_vec()), chunk), &mut out)
        .expect("prefetch filter");
    (out, stats)
}

/// File-backed prefetch: `PrefetchSource::open` takes the vectored
/// `readv` refill path on 64-bit unix.
fn run_prefetch_file(pf: &mut Prefilter, tmp: &TempDoc, chunk: usize) -> (Vec<u8>, RunStats) {
    let mut out = Vec::new();
    let stats = pf
        .filter_source(PrefetchSource::open(tmp.path(), chunk).expect("open doc"), &mut out)
        .expect("prefetch file filter");
    (out, stats)
}

#[test]
fn prefetch_matches_sync_reader_across_chunks() {
    for seed in [3, 17, 92] {
        let fx = random_fixture(seed);
        let tmp = TempDoc::new(&fx.doc);
        with_both_modes(|accel| {
            let mut pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");
            for &chunk in CHUNKS {
                let label = format!("seed {seed} accel {accel} chunk {chunk}");
                let want = run_sync(&mut pf, &fx.doc, chunk);
                let got = run_prefetch(&mut pf, &fx.doc, chunk);
                assert_same_run(&format!("{label} pipe"), &want, &got);
                let got = run_prefetch_file(&mut pf, &tmp, chunk);
                assert_same_run(&format!("{label} readv"), &want, &got);
            }
        });
    }
}

#[test]
fn pooled_prefetch_matches_sequential_sync() {
    let mut r = Rand::new(41);
    let dtd = random_dtd(&mut r);
    let paths = random_paths(&dtd, &mut r);
    let docs: Vec<Vec<u8>> = (0..BATCH).map(|_| random_doc(&dtd, &mut r)).collect();
    const CHUNK: usize = 64;
    with_both_modes(|accel| {
        let mut seq = Prefilter::compile(&dtd, &paths).expect("compile");
        let want: Vec<(Vec<u8>, RunStats)> =
            docs.iter().map(|d| run_sync(&mut seq, d, CHUNK)).collect();
        let pf = Prefilter::compile(&dtd, &paths).expect("compile");
        for &t in THREADS {
            let got = pf
                .run_batch_parallel(
                    docs.iter()
                        .map(|d| (PrefetchSource::new(Cursor::new(d.clone()), CHUNK), Vec::new())),
                    t,
                )
                .expect("pooled prefetch batch");
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_same_run(&format!("accel {accel} t={t} doc {i}"), w, g);
            }
        }
    });
}

#[test]
fn multi_query_prefetch_matches_sync() {
    let mut r = Rand::new(7);
    let dtd = random_dtd(&mut r);
    let queries: Vec<PathSet> = (0..3).map(|_| random_paths(&dtd, &mut r)).collect();
    let doc = random_doc(&dtd, &mut r);
    with_both_modes(|accel| {
        let mut mpf = Prefilter::compile_multi(&dtd, &queries).expect("compile multi");
        for &chunk in CHUNKS {
            let label = format!("accel {accel} chunk {chunk}");
            let (want_out, want_v, want_s) = mpf
                .run_multi(ReaderSource::new(Cursor::new(doc.clone()), chunk), Vec::new())
                .expect("sync multi");
            let (got_out, got_v, got_s) = mpf
                .run_multi(PrefetchSource::new(Cursor::new(doc.clone()), chunk), Vec::new())
                .expect("prefetch multi");
            assert_eq!(got_out, want_out, "{label}: union projection diverged");
            assert_eq!(got_v, want_v, "{label}: verdict diverged");
            assert_eq!(normalized(&got_s), normalized(&want_s), "{label}: stats diverged");
        }
        // Pooled multi-query batch over prefetch sources.
        for &t in THREADS {
            let (want_out, want_v, _) = mpf
                .run_multi(ReaderSource::new(Cursor::new(doc.clone()), 64), Vec::new())
                .expect("sync multi");
            let got = mpf
                .run_multi_batch_parallel(
                    vec![(PrefetchSource::new(Cursor::new(doc.clone()), 64), Vec::new())],
                    t,
                )
                .expect("pooled prefetch multi");
            let (got_out, got_v, _) = &got[0];
            assert_eq!(got_out, &want_out, "accel {accel} t={t}: pooled union diverged");
            assert_eq!(got_v, &want_v, "accel {accel} t={t}: pooled verdict diverged");
        }
    });
}

/// A reader that yields a prefix, then fails with a fixed message.
struct FailAfter {
    left: usize,
    msg: &'static str,
}

impl Read for FailAfter {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.left == 0 {
            return Err(std::io::Error::other(self.msg));
        }
        let n = self.left.min(buf.len());
        // A benign prefix the prefilter will happily scan past.
        buf[..n].fill(b' ');
        self.left -= n;
        Ok(n)
    }
}

#[test]
fn mid_stream_error_same_wording_as_sync() {
    let dtd = Dtd::parse(b"<!ELEMENT r (#PCDATA)>").expect("dtd");
    let paths = PathSet::parse(&["/*"]).expect("paths");
    let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
    const MSG: &str = "injected mid-stream failure";
    let sync_err = pf
        .filter_source(ReaderSource::new(FailAfter { left: 96, msg: MSG }, 32), std::io::sink())
        .expect_err("sync path must fail");
    let pre_err = pf
        .filter_source(PrefetchSource::new(FailAfter { left: 96, msg: MSG }, 32), std::io::sink())
        .expect_err("prefetch path must fail");
    assert!(matches!(sync_err, CoreError::Io(_)), "sync error kind: {sync_err}");
    assert!(matches!(pre_err, CoreError::Io(_)), "prefetch error kind: {pre_err}");
    assert_eq!(
        pre_err.to_string(),
        sync_err.to_string(),
        "the I/O thread must surface the same CoreError wording as the sync path"
    );
    assert!(pre_err.to_string().contains(MSG));
}

/// `Threads:` from /proc/self/status (linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
}

#[test]
fn early_drop_joins_io_thread_no_leak_no_deadlock() {
    // A document far larger than the window, consumed only a little:
    // dropping the source while the producer is parked (both slots
    // filled) must join the smpx-io thread, not deadlock or leak it.
    let doc: Vec<u8> = b"<r>".iter().chain(b"x".repeat(1 << 16).iter()).copied().collect();
    let before = thread_count();
    for _ in 0..64 {
        let mut src = PrefetchSource::new(Cursor::new(doc.clone()), 64);
        use smpx_core::DocSource as _;
        assert!(src.ensure(16).unwrap());
        drop(src); // mid-stream: producer holds/filled both slots
    }
    if let (Some(b), Some(a)) = (before, thread_count()) {
        // Drop joins, so no smpx-io thread survives; allow slack for
        // unrelated test-harness threads starting or stopping.
        assert!(a <= b + 8, "smpx-io threads leaked: {b} threads before, {a} after 64 early drops");
    }
}
