//! Shared helpers for the integration tests: seeded random non-recursive
//! DTDs, random valid documents, and random projection path sets.
//!
//! Element names deliberately include prefix pairs (`a`/`ab`/`abc`) so the
//! runtime's tag-name boundary check (the paper's `Abstract` vs
//! `AbstractText` case) is exercised constantly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smpx_dtd::{ContentModel, Dtd, DtdAutomaton, Regex};
use smpx_paths::PathSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A document written to a unique temp file, removed on drop — the disk
/// half of the source-matrix tests (`MmapSource` / `ReaderSource` need a
/// real file).
#[allow(dead_code)] // not every test target exercises file-backed sources
pub struct TempDoc {
    path: PathBuf,
}

#[allow(dead_code)]
impl TempDoc {
    pub fn new(doc: &[u8]) -> TempDoc {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("smpx-test-doc-{}-{n}.xml", std::process::id()));
        std::fs::write(&path, doc).expect("write temp doc");
        TempDoc { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDoc {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Name pool; element `i` may only contain elements with larger indices,
/// which makes every generated DTD acyclic by construction.
const NAMES: &[&str] = &["root", "a", "ab", "abc", "b", "c", "cd", "x", "y", "item", "it"];

/// A deterministic random generator bundle.
pub struct Rand {
    pub rng: SmallRng,
}

impl Rand {
    pub fn new(seed: u64) -> Rand {
        Rand { rng: SmallRng::seed_from_u64(seed) }
    }

    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n.max(1))
    }

    pub fn chance(&mut self, pct: u32) -> bool {
        self.rng.gen_range(0..100) < pct
    }
}

/// Random non-recursive DTD over a prefix-happy name pool.
pub fn random_dtd(r: &mut Rand) -> Dtd {
    let n = 4 + r.below(NAMES.len() - 4);
    let mut decls = String::new();
    for (i, &name) in NAMES.iter().enumerate().take(n) {
        let content = random_content(r, i + 1, n);
        decls.push_str(&format!("<!ELEMENT {name} {content}>\n"));
        if r.chance(25) {
            let req = if r.chance(50) { "#REQUIRED" } else { "#IMPLIED" };
            decls.push_str(&format!("<!ATTLIST {name} id CDATA {req}>\n"));
        }
    }
    Dtd::parse(decls.as_bytes()).expect("generated DTD parses")
}

/// Random content model referencing only elements in `lo..hi`.
fn random_content(r: &mut Rand, lo: usize, hi: usize) -> String {
    if lo >= hi {
        return "(#PCDATA)".to_string();
    }
    match r.below(10) {
        0 | 1 => "(#PCDATA)".to_string(),
        2 => "EMPTY".to_string(),
        3 => {
            // Mixed content.
            let mut names = Vec::new();
            for &candidate in &NAMES[lo..hi] {
                if r.chance(40) {
                    names.push(candidate);
                }
            }
            if names.is_empty() {
                "(#PCDATA)".to_string()
            } else {
                format!("(#PCDATA|{})*", names.join("|"))
            }
        }
        _ => format!("({})", random_regex(r, lo, hi, 2)),
    }
}

fn random_regex(r: &mut Rand, lo: usize, hi: usize, depth: usize) -> String {
    let atom = |r: &mut Rand| NAMES[lo + r.below(hi - lo)].to_string();
    let base = if depth == 0 || r.chance(50) {
        atom(r)
    } else if r.chance(50) {
        let k = 2 + r.below(2);
        let parts: Vec<String> = (0..k).map(|_| random_regex(r, lo, hi, depth - 1)).collect();
        format!("({})", parts.join(","))
    } else {
        let k = 2 + r.below(2);
        let parts: Vec<String> = (0..k).map(|_| random_regex(r, lo, hi, depth - 1)).collect();
        format!("({})", parts.join("|"))
    };
    match r.below(5) {
        0 => format!("{base}?"),
        1 => format!("{base}*"),
        2 => format!("{base}+"),
        _ => base,
    }
}

/// Random valid document for `dtd` (pretty plain text, no comments).
pub fn random_doc(dtd: &Dtd, r: &mut Rand) -> Vec<u8> {
    let mut out = Vec::new();
    gen_element(dtd, dtd.root(), r, &mut out, 0);
    out
}

fn gen_text(r: &mut Rand, out: &mut Vec<u8>) {
    const WORDS: &[&str] = &["lorem", "ipsum", "tag", "ab", "abc", "less", "amp"];
    let k = r.below(4);
    for i in 0..k {
        if i > 0 {
            out.push(b' ');
        }
        out.extend_from_slice(WORDS[r.below(WORDS.len())].as_bytes());
    }
}

fn gen_attrs(dtd: &Dtd, name: &str, r: &mut Rand, out: &mut Vec<u8>) {
    for att in dtd.attrs(name) {
        let required = matches!(att.default, smpx_dtd::AttDefault::Required);
        if required || r.chance(40) {
            out.extend_from_slice(format!(" {}=\"v{}\"", att.name, r.below(100)).as_bytes());
        }
    }
}

fn gen_element(dtd: &Dtd, name: &str, r: &mut Rand, out: &mut Vec<u8>, depth: usize) {
    let content = dtd.content(name).clone();
    // Sometimes serialize empty-able elements as bachelors.
    let force_empty = depth > 8;
    match content {
        ContentModel::Empty => {
            out.push(b'<');
            out.extend_from_slice(name.as_bytes());
            gen_attrs(dtd, name, r, out);
            if r.chance(70) {
                out.extend_from_slice(b"/>");
            } else {
                out.extend_from_slice(b">");
                out.extend_from_slice(b"</");
                out.extend_from_slice(name.as_bytes());
                out.push(b'>');
            }
        }
        ContentModel::Pcdata | ContentModel::Any => {
            if r.chance(25) {
                out.push(b'<');
                out.extend_from_slice(name.as_bytes());
                gen_attrs(dtd, name, r, out);
                out.extend_from_slice(b"/>");
                return;
            }
            out.push(b'<');
            out.extend_from_slice(name.as_bytes());
            gen_attrs(dtd, name, r, out);
            out.push(b'>');
            gen_text(r, out);
            out.extend_from_slice(b"</");
            out.extend_from_slice(name.as_bytes());
            out.push(b'>');
        }
        ContentModel::Mixed(names) => {
            out.push(b'<');
            out.extend_from_slice(name.as_bytes());
            gen_attrs(dtd, name, r, out);
            out.push(b'>');
            let k = if force_empty { 0 } else { r.below(4) };
            gen_text(r, out);
            for _ in 0..k {
                let child = &names[r.below(names.len())];
                gen_element(dtd, child, r, out, depth + 1);
                gen_text(r, out);
            }
            out.extend_from_slice(b"</");
            out.extend_from_slice(name.as_bytes());
            out.push(b'>');
        }
        ContentModel::Children(re) => {
            let seq = sample_regex(&re, r, force_empty);
            if seq.is_empty() && r.chance(50) {
                out.push(b'<');
                out.extend_from_slice(name.as_bytes());
                gen_attrs(dtd, name, r, out);
                out.extend_from_slice(b"/>");
                return;
            }
            out.push(b'<');
            out.extend_from_slice(name.as_bytes());
            gen_attrs(dtd, name, r, out);
            out.push(b'>');
            for child in seq {
                gen_element(dtd, &child, r, out, depth + 1);
            }
            out.extend_from_slice(b"</");
            out.extend_from_slice(name.as_bytes());
            out.push(b'>');
        }
    }
}

/// Sample a random word of the content-model language.
fn sample_regex(re: &Regex, r: &mut Rand, minimal: bool) -> Vec<String> {
    match re {
        Regex::Name(n) => vec![n.clone()],
        Regex::Seq(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(sample_regex(p, r, minimal));
            }
            out
        }
        Regex::Choice(parts) => {
            if minimal {
                // Pick the shortest-sampling alternative deterministically.
                let mut best: Option<Vec<String>> = None;
                for p in parts {
                    let s = sample_regex(p, r, true);
                    if best.as_ref().is_none_or(|b| s.len() < b.len()) {
                        best = Some(s);
                    }
                }
                best.unwrap_or_default()
            } else {
                sample_regex(&parts[r.below(parts.len())], r, minimal)
            }
        }
        Regex::Opt(inner) => {
            if !minimal && r.chance(50) {
                sample_regex(inner, r, minimal)
            } else {
                Vec::new()
            }
        }
        Regex::Star(inner) => {
            let mut out = Vec::new();
            if !minimal {
                for _ in 0..r.below(3) {
                    out.extend(sample_regex(inner, r, minimal));
                }
            }
            out
        }
        Regex::Plus(inner) => {
            let mut out = sample_regex(inner, r, minimal);
            if !minimal {
                for _ in 0..r.below(2) {
                    out.extend(sample_regex(inner, r, minimal));
                }
            }
            out
        }
    }
}

/// Random projection path set over the DTD's vocabulary (always includes
/// `/*`).
pub fn random_paths(dtd: &Dtd, r: &mut Rand) -> PathSet {
    let mut texts: Vec<String> = vec!["/*".to_string()];
    let n_paths = 1 + r.below(3);
    for _ in 0..n_paths {
        let mut path = String::new();
        let mut cur = dtd.root().to_string();
        path.push('/');
        path.push_str(&cur);
        let steps = 1 + r.below(3);
        for _ in 0..steps {
            let children: Vec<String> =
                dtd.effective_child_names(&cur).into_iter().map(str::to_string).collect();
            if children.is_empty() {
                break;
            }
            let next = children[r.below(children.len())].clone();
            path.push_str(if r.chance(25) { "//" } else { "/" });
            path.push_str(&next);
            cur = next;
        }
        if r.chance(50) {
            path.push('#');
        }
        texts.push(path);
    }
    // Occasionally a pure descendant path.
    if r.chance(40) {
        let name = NAMES[r.below(NAMES.len())];
        let flag = if r.chance(50) { "#" } else { "" };
        texts.push(format!("//{name}{flag}"));
    }
    PathSet::parse(&texts).expect("generated paths parse")
}

/// Check a generated document is valid for its DTD (token-level).
#[allow(dead_code)] // not every test target validates explicitly
pub fn assert_valid(dtd: &Dtd, doc: &[u8]) {
    let auto = DtdAutomaton::build(dtd).expect("automaton");
    let mut tokens: Vec<(String, bool)> = Vec::new();
    for t in smpx_xml::Tokenizer::new(doc) {
        match t.expect("well-formed") {
            smpx_xml::Token::StartTag { name, self_closing, .. } => {
                let n = String::from_utf8_lossy(name).into_owned();
                tokens.push((n.clone(), false));
                if self_closing {
                    tokens.push((n, true));
                }
            }
            smpx_xml::Token::EndTag { name, .. } => {
                tokens.push((String::from_utf8_lossy(name).into_owned(), true));
            }
            _ => {}
        }
    }
    assert!(
        auto.accepts(&tokens),
        "generated document must be DTD-valid:\n{}",
        String::from_utf8_lossy(doc)
    );
}
