//! The observability layer, end to end: every acceptance counter of the
//! metrics registry populates from the subsystem that owns it, the
//! snapshot stays coherent under concurrent hammering, and both
//! exposition formats hold their documented shape.
//!
//! The process-wide registry is enabled once for this whole test binary
//! (`obs::enable` is one-way); tests therefore assert *deltas* between
//! two snapshots rather than absolute values, and only ever assert
//! growth — counters are monotone, so concurrently running tests in
//! this binary can only help, never break, a `>` assertion.

use std::io::Read;
use std::time::Duration;

use smpx_core::obs::{self, CounterId, GaugeId, MetricsRegistry, Snapshot};
use smpx_core::{Pool, PrefetchSource, Prefilter, SharedPrefilter, SliceSource};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;

const EX2: &[u8] =
    br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

fn pf() -> Prefilter {
    let dtd = Dtd::parse(EX2).unwrap();
    let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
    Prefilter::compile(&dtd, &paths).unwrap()
}

fn counter(name: &str) -> u64 {
    obs::global().snapshot().scalar(name).unwrap_or_else(|| panic!("no series named {name}"))
}

/// Pool work: tasks execute, busy time accrues, and an uneven two-worker
/// batch forces at least one steal of a queued sibling task.
#[test]
fn pool_counters_populate() {
    obs::enable();
    let tasks0 = counter("smpx_pool_tasks_total");
    let steals0 = counter("smpx_pool_steals_total");

    // 2 workers, 8 tasks, grab = 2: tasks 0 and 1 both sleep, so they
    // form one refill chunk and whichever worker grabs it runs one long
    // task with the other still queued locally. Its sibling drains the
    // six instant tasks, finds the injector empty, and steals the
    // queued long task. The outer loop retries rare adverse schedules.
    for _ in 0..50 {
        let pool = Pool::new(2);
        pool.run(
            (0..8u64).collect::<Vec<_>>(),
            |_| (),
            |(), t| -> Result<(), std::convert::Infallible> {
                if t < 2 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                Ok(())
            },
        )
        .unwrap();
        if counter("smpx_pool_steals_total") > steals0 {
            break;
        }
    }

    assert!(counter("smpx_pool_tasks_total") >= tasks0 + 8, "tasks must count");
    assert!(counter("smpx_pool_steals_total") > steals0, "no steal in 50 uneven batches");
    assert!(counter("smpx_pool_busy_seconds_total") > 0, "busy nanos must accrue");
    assert!(obs::global().gauge(GaugeId::PoolWorkers) >= 2);
}

/// A reader that trickles: every chunk costs a sleep, so the consumer
/// demonstrably waits on the producer.
struct SlowReader {
    doc: Vec<u8>,
    pos: usize,
}

impl Read for SlowReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        std::thread::sleep(Duration::from_millis(2));
        let n = buf.len().min(64).min(self.doc.len() - self.pos);
        buf[..n].copy_from_slice(&self.doc[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn prefetch_wait_time_populates() {
    obs::enable();
    let chunks0 = counter("smpx_prefetch_chunks_total");
    let wait0 = counter("smpx_prefetch_consumer_wait_seconds_total")
        + counter("smpx_prefetch_producer_stall_seconds_total");

    let mut doc = b"<a>".to_vec();
    for j in 0..64 {
        doc.extend_from_slice(format!("<c><b>x{j}</b></c><b>keep-{j}</b>").as_bytes());
    }
    doc.extend_from_slice(b"</a>");
    let src = PrefetchSource::new(SlowReader { doc, pos: 0 }, 128);
    pf().filter_source(src, std::io::sink()).unwrap();

    assert!(counter("smpx_prefetch_chunks_total") > chunks0, "chunks must count");
    assert!(counter("smpx_prefetch_bytes_total") > 0, "delivered bytes must count");
    let waited = counter("smpx_prefetch_consumer_wait_seconds_total")
        + counter("smpx_prefetch_producer_stall_seconds_total");
    assert!(waited > wait0, "a trickling producer must make the consumer wait");
}

#[test]
fn lifecycle_compile_latency_populates() {
    obs::enable();
    let compiles0 = counter("smpx_lifecycle_compiles_total");
    let hist_count0 =
        hist_count(&obs::global().snapshot(), "smpx_lifecycle_compile_latency_seconds");

    let dtd = Dtd::parse(EX2).unwrap();
    let shared = SharedPrefilter::new(dtd, vec![PathSet::parse(&["/a/b#"]).unwrap()]).unwrap();
    shared.add_query("/a/c").unwrap();
    let generation = shared.settle().unwrap();

    assert!(counter("smpx_lifecycle_compiles_total") > compiles0, "compiles must count");
    assert!(counter("smpx_lifecycle_compile_seconds_total") > 0, "compile latency must accrue");
    assert!(counter("smpx_lifecycle_burst_edits_total") > 0, "the edit burst must count");
    let hist_count1 =
        hist_count(&obs::global().snapshot(), "smpx_lifecycle_compile_latency_seconds");
    assert!(hist_count1 > hist_count0, "every compile lands one latency observation");
    assert!(
        obs::global().gauge(GaugeId::LifecycleGeneration) >= generation.gen_no(),
        "the generation gauge trails no published generation"
    );
}

#[test]
fn shard_repairs_and_hits_populate() {
    obs::enable();
    let runs0 = counter("smpx_shard_runs_total");
    let repairs0 = counter("smpx_shard_repairs_total");
    let folded0 = counter("smpx_run_runs_total");

    // Record-open lookalikes inside quoted attribute values: textual
    // candidates the sequential frontier never crosses, so stitching
    // must repair around them (same workload the shard unit tests pin).
    let mut doc = b"<a>".to_vec();
    for j in 0..24 {
        doc.extend_from_slice(
            format!("<b id=\"<b>fake{j}</b><c>\">real-{j}</b><c><b>y{j}</b></c>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</a>");
    let (out, stats) = pf().run_sharded(SliceSource::new(&doc), Vec::new(), 4, 16).unwrap();
    let (want, _) = pf().filter_to_vec(&doc).unwrap();
    assert_eq!(out, want);
    assert!(stats.shards >= 2, "the workload must actually shard: {stats:?}");

    assert!(counter("smpx_shard_runs_total") > runs0, "sharded runs must count");
    assert!(counter("smpx_shard_repairs_total") > repairs0, "lookalikes force repairs");
    assert!(
        counter("smpx_run_runs_total") > folded0,
        "the stitched total folds into the run counters exactly once"
    );
    assert!(counter("smpx_stage_stitch_seconds_total") > 0, "stitch time must accrue");
}

/// Plain sequential runs fold their `RunStats` into the process counters
/// and the scan stage timer brackets them.
#[test]
fn run_stats_fold_into_process_counters() {
    obs::enable();
    let runs0 = counter("smpx_run_runs_total");
    let out0 = counter("smpx_run_output_bytes_total");
    let scans0 = counter("smpx_stage_scan_events_total");

    let doc = b"<a><c><b>x</b></c><b>keep</b></a>";
    let (out, stats) = pf().filter_to_vec(doc).unwrap();
    assert!(!out.is_empty());

    assert!(counter("smpx_run_runs_total") > runs0);
    assert!(counter("smpx_run_output_bytes_total") >= out0 + stats.output_bytes);
    assert!(counter("smpx_stage_scan_events_total") > scans0);
    assert!(counter("smpx_stage_scan_seconds_total") > 0);
}

fn hist_count(snap: &Snapshot, name: &str) -> u64 {
    snap.histograms
        .iter()
        .find(|h| h.def.name == name)
        .unwrap_or_else(|| panic!("no histogram named {name}"))
        .count()
}

/// Concurrent hammer on a *local* registry: snapshots taken mid-flight
/// are coherent (monotone counters, histogram count == Σ buckets), and
/// the final totals are exact.
#[test]
fn snapshot_stays_consistent_under_hammer() {
    use smpx_core::obs::HistId;
    use std::sync::atomic::{AtomicBool, Ordering};

    static REG: MetricsRegistry = MetricsRegistry::new();
    static STOP: AtomicBool = AtomicBool::new(false);

    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for i in 0..PER_WRITER {
                    REG.add(CounterId::RunRuns, 1);
                    REG.add(CounterId::RunInputBytes, 3);
                    REG.observe(HistId::ShardSegments, i % 200);
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(|| {
                let mut last_runs = 0u64;
                while !STOP.load(Ordering::Relaxed) {
                    let snap = REG.snapshot();
                    let runs = snap.scalar("smpx_run_runs_total").unwrap();
                    assert!(runs >= last_runs, "counter went backwards: {last_runs} -> {runs}");
                    last_runs = runs;
                    for h in &snap.histograms {
                        assert_eq!(
                            h.count(),
                            h.buckets.iter().sum::<u64>(),
                            "count is derived from the buckets, so it cannot disagree"
                        );
                    }
                }
            });
        }
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(50));
            STOP.store(true, Ordering::Relaxed);
        });
    });
    STOP.store(true, Ordering::Relaxed);

    let snap = REG.snapshot();
    let n = WRITERS as u64 * PER_WRITER;
    assert_eq!(snap.scalar("smpx_run_runs_total"), Some(n));
    assert_eq!(snap.scalar("smpx_run_input_bytes_total"), Some(3 * n));
    assert_eq!(hist_count(&snap, "smpx_shard_segments"), n);
}

/// Prometheus exposition: every line is either a well-formed comment or
/// `name{labels} value`, every series carries HELP + TYPE, and bucket
/// counts are cumulative.
#[test]
fn prometheus_exposition_parses() {
    let reg = MetricsRegistry::new();
    reg.add(CounterId::RunRuns, 7);
    reg.add(CounterId::PoolBusyNanos, 1_500_000_000); // 1.5 s
    reg.observe(smpx_core::obs::HistId::ShardSegments, 3);
    reg.observe(smpx_core::obs::HistId::ShardSegments, 999);
    let text = obs::render_prometheus(&reg.snapshot());

    let mut helped = std::collections::HashSet::new();
    let mut typed = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            typed.insert(it.next().unwrap().to_string());
            let kind = it.next().unwrap();
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown TYPE {kind:?}");
            continue;
        }
        // Sample line: `name value` or `name{le="..."} value`.
        let (name_and_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        value.parse::<f64>().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        let base = name_and_labels.split('{').next().unwrap();
        assert!(
            base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name {base:?}"
        );
        assert!(base.starts_with("smpx_"), "foreign series {base:?}");
    }
    // Seconds scaling: 1.5e9 ns render as 1.5 s.
    assert!(text.contains("smpx_pool_busy_seconds_total 1.5"), "nanos must scale:\n{text}");
    // Every sampled family is documented; `_bucket`/`_sum`/`_count`
    // roll up to their histogram family name.
    for fam in &helped {
        assert!(typed.contains(fam), "{fam} has HELP but no TYPE");
    }
    // Cumulative buckets: the +Inf bucket equals the family count (2).
    assert!(
        text.contains("smpx_shard_segments_bucket{le=\"+Inf\"} 2"),
        "+Inf bucket must equal the observation count:\n{text}"
    );
    assert!(text.contains("smpx_shard_segments_count 2"));
}

/// JSON-lines exposition: every line is a structurally valid flat JSON
/// object (checked by a small quote/brace scanner — no parser crate in
/// the tree) and names round-trip against the registry's series list.
#[test]
fn json_exposition_round_trips() {
    let reg = MetricsRegistry::new();
    reg.add(CounterId::RunRuns, 7);
    reg.observe(smpx_core::obs::HistId::ShardSegments, 5);
    let snap = reg.snapshot();
    let text = obs::render_json(&snap);

    let mut seen = Vec::new();
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line:?}");
        // Structural scan: quotes balance, braces/brackets nest, and the
        // object is flat except for the histogram `buckets` array.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in line.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced nesting in {line:?}");
        }
        assert_eq!(depth, 0, "unbalanced nesting in {line:?}");
        assert!(!in_str, "unterminated string in {line:?}");
        let name = line
            .split("\"metric\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or_else(|| panic!("no metric field in {line:?}"));
        seen.push(name.to_string());
    }
    // Round-trip: exactly the snapshot's series, in order.
    let want: Vec<String> = snap
        .counters
        .iter()
        .chain(snap.gauges.iter())
        .map(|s| s.def.name.to_string())
        .chain(snap.histograms.iter().map(|h| h.def.name.to_string()))
        .collect();
    assert_eq!(seen, want, "JSON lines must cover every series exactly once");
}
