//! Every worked example of the paper, end to end.

use smpx_core::{Action, Prefilter};
use smpx_dtd::Dtd;
use smpx_paths::extract::extract_from_text;
use smpx_paths::{PathSet, Relevance};

/// Fig. 1 DTD excerpt.
const FIG1_DTD: &[u8] = br#"<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"#;

/// Fig. 2 document.
const FIG2_DOC: &[u8] = b"<site><regions><africa><item><location>United States</location><name>T V</name><payment>Creditcard</payment><description>15''LCD-FlatPanel</description><shipping>Within country</shipping><incategory category=\"3\"/></item></africa><asia/><australia><item ><location>Egypt</location><name>PDA</name><payment>Check</payment><description>Palm Zire 71</description><shipping/><incategory category=\"3\"/></item></australia></regions></site>";

/// Example 2 DTD.
const EX2_DTD: &[u8] =
    br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

/// Example 1: prefiltering the Fig. 2 document for
/// `<q>{//australia//description}</q>` yields exactly the document the
/// paper prints, inspecting only a fraction of the characters (the paper
/// counts ~22%; our accounting of tag-end scans lands within a few
/// points).
#[test]
fn example1_full_trace() {
    let dtd = Dtd::parse(FIG1_DTD).unwrap();
    let paths = extract_from_text("//australia//description").unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let (out, stats) = pf.filter_to_vec(FIG2_DOC).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out),
        "<site><australia><description>Palm Zire 71</description></australia></site>"
    );
    assert!(stats.char_comp_pct() < 30.0, "paper reports ~22%, got {:.1}%", stats.char_comp_pct());
    // The 25-character initial jump after <site> (Example 1) plus further
    // jumps must show up.
    assert!(stats.initial_jump_chars >= 25);
}

/// Example 4 (first part): the extraction for Example 1's query.
#[test]
fn example4_path_extraction() {
    let paths = extract_from_text("//australia//description").unwrap();
    let mut texts: Vec<String> = paths.paths().iter().map(|p| p.to_string()).collect();
    texts.sort();
    assert_eq!(texts, vec!["/*", "//australia//description#"]);
}

/// Example 2 + Fig. 3: the compiled automaton for /a/b against the toy
/// DTD, plus the runtime distinguishing `<a><b>…` from `<a><c><b>…`.
#[test]
fn example2_and_figure3() {
    let dtd = Dtd::parse(EX2_DTD).unwrap();
    let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();

    // Fig. 3 shape: 7 states, J[q3] = 4, T[q2] = copy on.
    let t = pf.tables();
    assert_eq!(t.state_count(), 7);
    assert!(t.states.iter().any(|s| s.jump == 4 && s.action == Action::Nop));
    assert!(t.states.iter().any(|s| s.action == Action::CopyOn));
    assert!(t.states.iter().any(|s| s.action == Action::CopyOff));

    // Part (2) of Example 2: a b-child of c must not be mistaken for a
    // b-child of a.
    let (out, _) = pf.filter_to_vec(b"<a><c><b>inner</b></c><b>direct</b></a>").unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<a><b>direct</b></a>");
}

/// Example 3: entering the c-state jumps 4 characters (the mandatory
/// `<b/>`).
#[test]
fn example3_jump_offset() {
    let dtd = Dtd::parse(EX2_DTD).unwrap();
    let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
    let pf = Prefilter::compile(&dtd, &paths).unwrap();
    let c_state = pf
        .tables()
        .states
        .iter()
        .find(|s| s.label.as_deref_pair() == Some(("c", false)))
        .expect("c state exists");
    assert_eq!(c_state.jump, 4);
}

/// Helper to read the (name, close) pair out of the label Option.
trait LabelPair {
    fn as_deref_pair(&self) -> Option<(&str, bool)>;
}

impl LabelPair for Option<(String, bool)> {
    fn as_deref_pair(&self) -> Option<(&str, bool)> {
        self.as_ref().map(|(n, c)| (n.as_str(), *c))
    }
}

/// Examples 5/6: top-level equality and the C3 condition keeping the
/// c-tags for `<x>{/a/b,//b}</x>`.
#[test]
fn example6_relevance_and_output() {
    let paths = PathSet::parse(&["/*", "/a/b#", "//b#"]).unwrap();
    let rel = Relevance::new(&paths);
    // All tokens of D = <a><c><b>T</b></c></a> are relevant.
    assert!(rel.relevant_tag(&["a"]));
    assert!(rel.relevant_tag(&["a", "c"])); // C3
    assert!(rel.relevant_tag(&["a", "c", "b"])); // C1
    assert!(rel.relevant_text(&["a", "c", "b"])); // C2

    // And the runtime preserves the complete document.
    let dtd = Dtd::parse(EX2_DTD).unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let doc = b"<a><c><b>T</b></c></a>";
    let (out, _) = pf.filter_to_vec(doc).unwrap();
    assert_eq!(out, doc.to_vec());
}

/// Example 10/11/12 are covered at module level in smpx-core; here the
/// observable end-to-end consequence of Example 12: for //c# the runtime
/// never visits b-tags inside c (it scans directly for </c>), and the
/// c-subtree is copied raw.
#[test]
fn example12_copy_through() {
    let dtd = Dtd::parse(EX2_DTD).unwrap();
    let paths = PathSet::parse(&["/*", "//c#"]).unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    // 5 states: q0, a, â, c, ĉ — no b states.
    assert_eq!(pf.tables().state_count(), 5);
    assert!(pf
        .tables()
        .states
        .iter()
        .all(|s| s.label.as_deref_pair().is_none_or(|(n, _)| n != "b")));
    let doc = b"<a><b>skip</b><c><b>keep raw  </b><b/></c></a>";
    let (out, _) = pf.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<a><c><b>keep raw  </b><b/></c></a>");
}

/// The paper's Medline prefix-tag case (Sec. II, special case ()):
/// scanning for <Abstract> must not match <AbstractText>.
#[test]
fn medline_prefix_tag_case() {
    let dtd = Dtd::parse(
        br#"<!DOCTYPE r [
            <!ELEMENT r (Abstract | AbstractText)*>
            <!ELEMENT Abstract (#PCDATA)>
            <!ELEMENT AbstractText (#PCDATA)>
        ]>"#,
    )
    .unwrap();
    let paths = PathSet::parse(&["/*", "/r/Abstract#"]).unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let doc = b"<r><AbstractText>one</AbstractText><Abstract>two</Abstract><AbstractText>three</AbstractText></r>";
    let (out, stats) = pf.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<r><Abstract>two</Abstract></r>");
    assert!(stats.false_matches >= 2);
}

/// Table II query M1 behaviour: an element declared in the DTD but absent
/// from the instance is scanned for without ever matching — output is just
/// the preserved root.
#[test]
fn m1_absent_element() {
    use smpx_datagen::{medline, GenOptions};
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).unwrap();
    let doc = medline::generate(GenOptions::sized(64 * 1024));
    let paths = extract_from_text("/MedlineCitationSet//CollectionTitle").unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let (out, stats) = pf.filter_to_vec(&doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<MedlineCitationSet></MedlineCitationSet>");
    // The scan still skips most of the input (paper: 8.37% inspected).
    assert!(stats.char_comp_pct() < 35.0);
}
