//! Dynamic query lifecycle: the generation-swap equivalence suite.
//!
//! The contract of `smpx_core::lifecycle` is that dynamism is *free* of
//! semantic cost: after any sequence of `add_query`/`remove_query`
//! edits, the settled generation behaves exactly like a fresh
//! `QueryRegistry` compile of the surviving query set —
//!
//! * the union projection is **byte-identical**, per document, across
//!   delivery backends {slice, mmap, reader} × threads {0, 1, 4} ×
//!   SIMD/scalar modes, sequential and pooled;
//! * per-query verdicts agree once the fresh registry's dense ids are
//!   mapped through the generation's external-id table, and every
//!   removed (tombstoned) id reports unmatched at full verdict width;
//! * run statistics are identical (same automaton, same Fig. 4 loop).
//!
//! On top of the settled-state equivalence, the concurrent-swap stress
//! tests pin the serving guarantees: documents in flight while
//! generations publish always produce the output of *some* published
//! generation (never a torn mix), and edits complete with compile
//! latency off the hot path — the whole churn loop is wall-clock
//! bounded.
//!
//! The SIMD/scalar toggle (`memscan::force_accel`) is process-global, so
//! mode-sweeping tests serialize on [`mode_lock`].

mod common;

use common::{random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::lifecycle::{Generation, SharedPrefilter};
use smpx_core::runtime::source::{MmapSource, ReaderSource, SliceSource};
use smpx_core::{MultiVerdict, QueryId, QueryRegistry, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

const THREADS: &[usize] = &[0, 1, 4];
const CHUNK: usize = 64;

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes(mut f: impl FnMut(bool)) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    f(true);
    memscan::force_accel(false);
    f(false);
    memscan::force_accel(env_accel);
}

/// One scripted edit against the shared handle *and* a slot model the
/// test keeps in parallel, so the expected live set is always known.
enum Edit {
    Add(PathSet),
    Remove(u32),
}

/// A lifecycle fixture: a DTD, the seed workload, a batch of documents,
/// and an edit script exercising add, remove, and re-add.
struct LifecycleFixture {
    dtd: Dtd,
    initial: Vec<PathSet>,
    edits: Vec<Edit>,
    docs: Vec<Vec<u8>>,
}

fn random_lifecycle_fixture(seed: u64) -> LifecycleFixture {
    let mut r = Rand::new(seed);
    let dtd = random_dtd(&mut r);
    let initial: Vec<PathSet> = (0..4).map(|_| random_paths(&dtd, &mut r)).collect();
    let edits = vec![
        Edit::Add(random_paths(&dtd, &mut r)),
        Edit::Remove(1),
        Edit::Add(random_paths(&dtd, &mut r)),
        Edit::Remove(4),
        Edit::Remove(0),
        Edit::Add(initial[1].clone()), // re-add a removed query under a fresh id
    ];
    let docs = (0..5).map(|_| random_doc(&dtd, &mut r)).collect();
    LifecycleFixture { dtd, initial, edits, docs }
}

/// Apply the fixture's edits to `shared`, mirroring them in a slot model;
/// returns the model (external id -> live path set or tombstone).
fn apply_edits(fx: &LifecycleFixture, shared: &SharedPrefilter) -> Vec<Option<PathSet>> {
    let mut slots: Vec<Option<PathSet>> = fx.initial.iter().cloned().map(Some).collect();
    for edit in &fx.edits {
        match edit {
            Edit::Add(paths) => {
                let id = shared.add_paths(paths.clone()).expect("add under script");
                assert_eq!(id.0 as usize, slots.len(), "ids allocate densely, never reused");
                slots.push(Some(paths.clone()));
            }
            Edit::Remove(n) => {
                shared.remove_query(QueryId(*n)).expect("remove under script");
                slots[*n as usize] = None;
            }
        }
    }
    slots
}

/// A fresh `QueryRegistry` compile of the model's live set, plus the
/// positional map from the fresh registry's dense ids to external ids.
fn fresh_of_model(dtd: &Dtd, slots: &[Option<PathSet>]) -> (smpx_core::MultiPrefilter, Vec<u32>) {
    let mut reg = QueryRegistry::new(dtd.clone());
    let mut extern_of = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        if let Some(paths) = slot {
            reg.add_paths(paths.clone());
            extern_of.push(i as u32);
        }
    }
    (reg.compile().expect("fresh compile of the live set"), extern_of)
}

/// Shared verdict (external ids, full width) vs fresh verdict (dense
/// ids): surviving ids agree positionally, tombstoned ids are unmatched.
fn assert_verdict_equiv(
    label: &str,
    got: &MultiVerdict,
    fresh: &MultiVerdict,
    extern_of: &[u32],
    width: u32,
) {
    assert_eq!(got.n_queries, width, "{label}: verdict width covers every allocated id");
    assert_eq!(fresh.n_queries as usize, extern_of.len(), "{label}: fresh width");
    let mut live = vec![false; width as usize];
    for (dense, &ext) in extern_of.iter().enumerate() {
        live[ext as usize] = true;
        assert_eq!(
            got.is_matched(QueryId(ext)),
            fresh.is_matched(QueryId(dense as u32)),
            "{label}: external q{ext} diverged from fresh dense q{dense}"
        );
    }
    for (ext, &is_live) in live.iter().enumerate() {
        if !is_live {
            assert!(
                !got.is_matched(QueryId(ext as u32)),
                "{label}: tombstoned q{ext} must report unmatched"
            );
        }
    }
}

/// The settled generation against the fresh registry across backends ×
/// threads in the current SIMD/scalar mode: byte-identical projection,
/// equal stats, equivalent verdicts — sequential and pooled.
fn sweep_equivalence(
    label: &str,
    fx: &LifecycleFixture,
    shared: &SharedPrefilter,
    generation: &Generation,
    fresh: &mut smpx_core::MultiPrefilter,
    extern_of: &[u32],
) {
    let width = generation.id_width();
    assert_eq!(generation.live_queries(), extern_of.len(), "{label}: live count");

    // Sequential reference per backend, shared vs fresh.
    let tmps: Vec<TempDoc> = fx.docs.iter().map(|d| TempDoc::new(d)).collect();
    type Run = (Vec<u8>, MultiVerdict, RunStats);
    let seq_pairs: Vec<(&str, Vec<Run>, Vec<Run>)> = vec![
        (
            "slice",
            fx.docs
                .iter()
                .map(|d| generation.run_multi(SliceSource::new(d), Vec::new()).expect("shared run"))
                .collect(),
            fx.docs
                .iter()
                .map(|d| fresh.run_multi(SliceSource::new(d), Vec::new()).expect("fresh run"))
                .collect(),
        ),
        (
            "mmap",
            tmps.iter()
                .map(|t| {
                    generation
                        .run_multi(MmapSource::open(t.path()).expect("map doc"), Vec::new())
                        .expect("shared run")
                })
                .collect(),
            tmps.iter()
                .map(|t| {
                    fresh
                        .run_multi(MmapSource::open(t.path()).expect("map doc"), Vec::new())
                        .expect("fresh run")
                })
                .collect(),
        ),
        (
            "reader",
            fx.docs
                .iter()
                .map(|d| {
                    generation
                        .run_multi(
                            ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK),
                            Vec::new(),
                        )
                        .expect("shared run")
                })
                .collect(),
            fx.docs
                .iter()
                .map(|d| {
                    fresh
                        .run_multi(
                            ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK),
                            Vec::new(),
                        )
                        .expect("fresh run")
                })
                .collect(),
        ),
    ];
    for (backend, shared_runs, fresh_runs) in &seq_pairs {
        for (di, ((so, sv, ss), (fo, fv, fs))) in shared_runs.iter().zip(fresh_runs).enumerate() {
            let l = format!("{label}/{backend} doc {di}");
            assert_eq!(so, fo, "{l}: projection bytes diverged from the fresh compile");
            assert_eq!(ss, fs, "{l}: stats diverged");
            assert_verdict_equiv(&l, sv, fv, extern_of, width);
        }
    }

    // Pooled batches resolve the generation per document and must match
    // the sequential shared runs exactly, for every backend and width.
    for &t in THREADS {
        let got = shared
            .run_multi_batch_parallel(fx.docs.iter().map(|d| (SliceSource::new(d), Vec::new())), t)
            .expect("pooled slice batch");
        assert_eq!(got, seq_pairs[0].1, "{label}/slice pooled t={t}");
        let got = shared
            .run_multi_batch_parallel(
                tmps.iter().map(|t| (MmapSource::open(t.path()).expect("map doc"), Vec::new())),
                t,
            )
            .expect("pooled mmap batch");
        assert_eq!(got, seq_pairs[1].1, "{label}/mmap pooled t={t}");
        let got = shared
            .run_multi_batch_parallel(
                fx.docs.iter().map(|d| {
                    (ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK), Vec::new())
                }),
                t,
            )
            .expect("pooled reader batch");
        assert_eq!(got, seq_pairs[2].1, "{label}/reader pooled t={t}");
    }
}

#[test]
fn edited_generation_equals_fresh_registry_across_backends_threads_and_modes() {
    for seed in [3u64, 17, 59] {
        let fx = random_lifecycle_fixture(seed);
        let shared =
            SharedPrefilter::new(fx.dtd.clone(), fx.initial.clone()).expect("seed compile");
        let g0 = shared.generation();
        assert_eq!(g0.gen_no(), 0);

        let slots = apply_edits(&fx, &shared);
        let generation = shared.settle().expect("settle after script");
        assert!(generation.gen_no() >= 1, "edits must publish a new generation");
        assert_eq!(generation.id_width() as usize, slots.len());

        let (mut fresh, extern_of) = fresh_of_model(&fx.dtd, &slots);
        with_both_modes(|mode| {
            sweep_equivalence(
                &format!("seed {seed} accel={mode}"),
                &fx,
                &shared,
                &generation,
                &mut fresh,
                &extern_of,
            );
        });

        // The pre-edit generation is still whole: in-flight holders of
        // its Arc keep producing generation-0 output after the swap.
        let (mut pre, pre_ids) =
            fresh_of_model(&fx.dtd, &fx.initial.iter().cloned().map(Some).collect::<Vec<_>>());
        assert_eq!(pre_ids.len(), fx.initial.len());
        for (di, d) in fx.docs.iter().enumerate() {
            let (got, gv, gs) = g0.run_multi(SliceSource::new(d), Vec::new()).expect("old gen");
            let (want, wv, ws) = pre.run_multi(SliceSource::new(d), Vec::new()).expect("fresh");
            assert_eq!(got, want, "seed {seed} doc {di}: old generation bytes changed");
            assert_eq!((gv, gs), (wv, ws), "seed {seed} doc {di}: old generation run changed");
        }
    }
}

#[test]
fn generation_numbers_strictly_increase_and_settle_is_idempotent() {
    let fx = random_lifecycle_fixture(29);
    let shared = SharedPrefilter::new(fx.dtd.clone(), fx.initial.clone()).expect("seed compile");
    let mut last = shared.generation().gen_no();
    assert_eq!(last, 0);
    for _ in 0..4 {
        shared.add_paths(fx.initial[0].clone()).expect("add");
        let g = shared.settle().expect("settle");
        assert!(g.gen_no() > last, "gen {} after {}", g.gen_no(), last);
        last = g.gen_no();
        // Settling with nothing pending republishes nothing.
        assert_eq!(shared.settle().expect("idempotent settle").gen_no(), last);
    }
}

/// Documents in flight while generations publish: every observed run
/// matches the expected output of the generation it resolved — no torn
/// automatons, no cross-generation mixes — and the whole churn loop
/// completes inside a generous wall-clock bound (compile latency stays
/// off the document path; a serial compile-per-edit-per-document
/// schedule would blow well past it if edits blocked traffic).
#[test]
fn concurrent_swaps_serve_whole_generations_within_bound() {
    let started = Instant::now();
    let fx = random_lifecycle_fixture(47);
    let shared =
        Arc::new(SharedPrefilter::new(fx.dtd.clone(), fx.initial.clone()).expect("seed compile"));

    // Precompute, per generation the single-edit/settle schedule below
    // will publish, the expected (projection, verdict) of every document.
    // One edit then one settle => generation k is the seed set plus the
    // first k edits applied.
    let mut slots: Vec<Option<PathSet>> = fx.initial.iter().cloned().map(Some).collect();
    let mut expected: Vec<Vec<(Vec<u8>, MultiVerdict)>> = Vec::new();
    let expect_for = |slots: &[Option<PathSet>]| {
        let (mut fresh, extern_of) = fresh_of_model(&fx.dtd, slots);
        let width = slots.len() as u32;
        fx.docs
            .iter()
            .map(|d| {
                let (out, v, _) =
                    fresh.run_multi(SliceSource::new(d), Vec::new()).expect("reference run");
                let mut matched = smpx_core::QueryIdSet::new();
                for q in v.matched_ids() {
                    matched.insert(QueryId(extern_of[q.0 as usize]));
                }
                (out, MultiVerdict { matched, n_queries: width })
            })
            .collect::<Vec<_>>()
    };
    expected.push(expect_for(&slots));
    for edit in &fx.edits {
        match edit {
            Edit::Add(paths) => slots.push(Some(paths.clone())),
            Edit::Remove(n) => slots[*n as usize] = None,
        }
        expected.push(expect_for(&slots));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let runs = Arc::new(AtomicUsize::new(0));
    let traffic: Vec<_> = (0..2)
        .map(|worker| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let runs = Arc::clone(&runs);
            let docs = fx.docs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut di = worker;
                while !stop.load(Ordering::Relaxed) {
                    di = (di + 1) % docs.len();
                    // Resolve once, run to completion on that snapshot —
                    // exactly what a serving worker does.
                    let generation = shared.generation();
                    let (out, v, _) = generation
                        .run_multi(SliceSource::new(&docs[di]), Vec::new())
                        .expect("in-flight run");
                    let (want_out, want_v) = &expected[generation.gen_no() as usize][di];
                    assert_eq!(
                        &out,
                        want_out,
                        "doc {di} on generation {}: torn output",
                        generation.gen_no()
                    );
                    assert_eq!(&v, want_v, "doc {di} on generation {}", generation.gen_no());
                    runs.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Churn: one edit, one settle — each publish lands while traffic is
    // in flight.
    for edit in &fx.edits {
        match edit {
            Edit::Add(paths) => {
                shared.add_paths(paths.clone()).expect("add under traffic");
            }
            Edit::Remove(n) => shared.remove_query(QueryId(*n)).expect("remove under traffic"),
        }
        let g = shared.settle().expect("settle under traffic");
        assert!(g.gen_no() >= 1);
    }
    // Let traffic keep running on the final generation briefly.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        t.join().expect("traffic thread");
    }
    assert_eq!(shared.generation().gen_no() as usize, fx.edits.len());
    assert!(runs.load(Ordering::Relaxed) > 0, "traffic must have run during the churn");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(120),
        "edit churn under traffic took {elapsed:?} — compile latency is leaking onto the hot path"
    );
}

/// A pooled batch racing a single swap: every per-document result is the
/// complete output of the pre-edit or the post-edit generation.
#[test]
fn pooled_batch_racing_a_swap_yields_whole_generation_results() {
    let fx = random_lifecycle_fixture(61);
    let shared =
        Arc::new(SharedPrefilter::new(fx.dtd.clone(), fx.initial.clone()).expect("seed compile"));
    let slots_pre: Vec<Option<PathSet>> = fx.initial.iter().cloned().map(Some).collect();
    let mut slots_post = slots_pre.clone();
    let added = random_paths(&fx.dtd, &mut Rand::new(62));
    slots_post.push(Some(added.clone()));

    let outs_for = |slots: &[Option<PathSet>]| {
        let (mut fresh, _) = fresh_of_model(&fx.dtd, slots);
        fx.docs
            .iter()
            .map(|d| fresh.run_multi(SliceSource::new(d), Vec::new()).expect("reference").0)
            .collect::<Vec<_>>()
    };
    let pre = outs_for(&slots_pre);
    let post = outs_for(&slots_post);

    for round in 0..8 {
        let batch: Vec<(SliceSource<'_>, Vec<u8>)> = fx
            .docs
            .iter()
            .cycle()
            .take(fx.docs.len() * 4)
            .map(|d| (SliceSource::new(d), Vec::new()))
            .collect();
        let editor = {
            let shared = Arc::clone(&shared);
            let added = added.clone();
            std::thread::spawn(move || {
                // Publish one swap mid-batch (add on even rounds, undo on
                // odd), leaving the set back where the round found it.
                if round % 2 == 0 {
                    shared.add_paths(added).expect("racing add");
                } else {
                    let width = shared.id_width();
                    shared.remove_query(QueryId(width - 1)).expect("racing remove");
                }
            })
        };
        let results = shared.run_multi_batch_parallel(batch, 4).expect("racing batch");
        editor.join().expect("editor thread");
        for (i, (out, _, _)) in results.iter().enumerate() {
            let di = i % fx.docs.len();
            assert!(
                out == &pre[di] || out == &post[di],
                "round {round} doc {di}: output is neither adjacent generation's \
                 ({} bytes; pre {} / post {})",
                out.len(),
                pre[di].len(),
                post[di].len()
            );
        }
        shared.settle().expect("settle between rounds");
    }
}

/// Edit-rejection semantics, end to end through the public API.
#[test]
fn lifecycle_edit_errors_are_precise() {
    let fx = random_lifecycle_fixture(83);
    let shared = SharedPrefilter::new(fx.dtd.clone(), fx.initial.clone()).expect("seed compile");
    let width = shared.id_width();
    let err = shared.remove_query(QueryId(width + 7)).unwrap_err();
    assert!(err.to_string().contains("never registered"), "{err}");
    shared.remove_query(QueryId(0)).expect("first remove");
    let err = shared.remove_query(QueryId(0)).unwrap_err();
    assert!(err.to_string().contains("already removed"), "{err}");
    for id in 1..width - 1 {
        shared.remove_query(QueryId(id)).expect("drain");
    }
    let err = shared.remove_query(QueryId(width - 1)).unwrap_err();
    assert!(err.to_string().contains("last live query"), "{err}");
    assert!(shared.add_query("/broken[").is_err(), "malformed XPath rejected at add time");
    // Every rejected edit left the set serveable.
    assert_eq!(shared.settle().expect("still serving").live_queries(), 1);
}
