//! The recursion extension (the paper's sketched future work, Sec. II:
//! "all techniques can be extended to handle recursiveness").
//!
//! Recursive elements become *opaque*: the automaton holds only their dual
//! states, and the runtime crosses their subtrees with a balanced
//! depth-counting scan. Subtrees that projection paths could reach into
//! are conservatively copied whole — projection-safe, though possibly
//! larger than the exact Def. 3 output.

use smpx_core::{Action, Prefilter};
use smpx_dtd::Dtd;
use smpx_engine::InMemEngine;
use smpx_paths::xpath::XPath;
use smpx_paths::PathSet;

/// a contains b's and recursive x's; x nests itself.
const REC_DTD: &[u8] = br#"<!DOCTYPE a [
    <!ELEMENT a (b|x)*>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT x (x?, b)>
    <!ATTLIST x depth CDATA #IMPLIED>
]>"#;

fn pf(paths: &[&str]) -> Prefilter {
    let dtd = Dtd::parse(REC_DTD).unwrap();
    Prefilter::compile(&dtd, &PathSet::parse(paths).unwrap()).unwrap()
}

#[test]
fn recursive_elements_detected() {
    let dtd = Dtd::parse(REC_DTD).unwrap();
    let rec: Vec<&str> = dtd.recursive_elements().into_iter().collect();
    assert_eq!(rec, vec!["x"]);
    assert!(dtd.is_recursive());
}

#[test]
fn balanced_skip_over_nested_subtrees() {
    // The b's inside x must not be mistaken for /a/b matches, even though
    // the x-subtree nests further x's.
    let mut p = pf(&["/*", "/a/b#"]);
    let doc = b"<a><x depth=\"1\"><x depth=\"2\"><b>deep</b></x><b>mid</b></x><b>keep</b><x><b>n</b></x></a>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<a><b>keep</b></a>");
}

#[test]
fn conservative_copy_when_paths_reach_below() {
    // //b# can match inside x: the whole x subtree is preserved raw.
    let mut p = pf(&["/*", "//b#"]);
    let doc = b"<a><x depth=\"1\"><x depth=\"2\"><b>deep</b></x><b>mid</b></x><b>keep</b></a>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out),
        "<a><x depth=\"1\"><x depth=\"2\"><b>deep</b></x><b>mid</b></x><b>keep</b></a>"
    );
}

#[test]
fn tag_only_interest_keeps_tag_skips_interior() {
    // /a/x selects the x tags only; nothing selects below them, so the
    // interior is balanced-skipped exactly.
    let mut p = pf(&["/*", "/a/x"]);
    let doc = b"<a><x depth=\"1\"><x><b>hidden</b></x><b>h2</b></x><b>t</b></a>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<a><x depth=\"1\"></x></a>");
}

#[test]
fn bachelorish_and_empty_recursives() {
    // x always needs a b child in this DTD, so use a DTD where x? can be
    // truly empty and appear as a bachelor.
    let dtd = Dtd::parse(b"<!ELEMENT r (x|t)*> <!ELEMENT x (x?) > <!ELEMENT t (#PCDATA)>").unwrap();
    let mut p = Prefilter::compile(&dtd, &PathSet::parse(&["/*", "/r/t#"]).unwrap()).unwrap();
    let doc = b"<r><x/><x><x/></x><t>keep</t><x><x><x/></x></x></r>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<r><t>keep</t></r>");
}

#[test]
fn compiled_tables_mark_balanced_states() {
    let p = pf(&["/*", "/a/b#"]);
    let balanced: Vec<&str> = p
        .tables()
        .states
        .iter()
        .filter(|s| s.balanced)
        .map(|s| s.label.as_ref().unwrap().0.as_str())
        .collect();
    assert_eq!(balanced, vec!["x"]);
    // The x state merely orients the scan: action nop.
    let x_state = p.tables().states.iter().find(|s| s.balanced).unwrap();
    assert_eq!(x_state.action, Action::Nop);
}

#[test]
fn copy_on_balanced_state_when_subtree_needed() {
    let p = pf(&["/*", "//b#"]);
    let x_state = p.tables().states.iter().find(|s| s.balanced).unwrap();
    assert_eq!(x_state.action, Action::CopyOn);
}

#[test]
fn stream_equals_slice_with_recursion() {
    let mut p = pf(&["/*", "//b#"]);
    let doc = b"<a><x depth=\"1\"><x depth=\"2\"><b>deep</b></x><b>mid</b></x><b>keep</b><x><b>z</b></x></a>";
    let (slice_out, _) = p.filter_to_vec(doc).unwrap();
    for chunk in [2usize, 7, 64, 4096] {
        let mut out = Vec::new();
        p.filter_stream(&doc[..], &mut out, chunk).unwrap();
        assert_eq!(out, slice_out, "chunk {chunk}");
    }
}

#[test]
fn projection_safety_on_recursive_documents() {
    let dtd = Dtd::parse(REC_DTD).unwrap();
    let doc: &[u8] = b"<a><x depth=\"1\"><x depth=\"2\"><b>deep</b></x><b>mid</b></x><b>keep</b><x><b>last</b></x></a>";
    let engine = InMemEngine::unlimited();
    for (query_text, paths) in [
        ("//b", vec!["/*", "//b#"]),
        ("/a/b", vec!["/*", "/a/b#"]),
        ("/a/x/b", vec!["/*", "/a/x#"]),
        ("//x//b", vec!["/*", "//x#"]),
    ] {
        let query = XPath::parse(query_text).unwrap();
        let mut p = Prefilter::compile(&dtd, &PathSet::parse(&paths).unwrap()).unwrap();
        let (projected, _) = p.filter_to_vec(doc).unwrap();
        let a = engine.load(doc).unwrap().eval(&query);
        let b = engine.load(&projected).unwrap().eval(&query);
        assert_eq!(a, b, "projection-unsafe for {query_text}");
    }
}

#[test]
fn deeply_nested_recursion() {
    // 200 levels of nesting: the balanced counter must not lose track.
    let dtd = Dtd::parse(b"<!ELEMENT r (x|t)*> <!ELEMENT x (x?) > <!ELEMENT t (#PCDATA)>").unwrap();
    let mut doc = Vec::from(&b"<r>"[..]);
    for _ in 0..200 {
        doc.extend_from_slice(b"<x>");
    }
    for _ in 0..200 {
        doc.extend_from_slice(b"</x>");
    }
    doc.extend_from_slice(b"<t>payload</t></r>");
    let mut p = Prefilter::compile(&dtd, &PathSet::parse(&["/*", "/r/t#"]).unwrap()).unwrap();
    let (out, stats) = p.filter_to_vec(&doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out), "<r><t>payload</t></r>");
    assert!(stats.tokens_matched >= 400, "every x tag is counted");
}

#[test]
fn recursive_root_element() {
    let dtd = Dtd::parse(b"<!ELEMENT x (x?, t)> <!ELEMENT t (#PCDATA)>").unwrap();
    // Query below the recursive root: whole document preserved.
    let mut p = Prefilter::compile(&dtd, &PathSet::parse(&["/*", "//t#"]).unwrap()).unwrap();
    let doc = b"<x><x><t>inner</t></x><t>outer</t></x>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    assert_eq!(out, doc.to_vec());
    // Query touching nothing below the root tag: root kept, interior
    // skipped.
    let mut p2 = Prefilter::compile(&dtd, &PathSet::parse(&["/*"]).unwrap()).unwrap();
    let (out2, _) = p2.filter_to_vec(doc).unwrap();
    assert_eq!(String::from_utf8_lossy(&out2), "<x></x>");
}

#[test]
fn xmark_with_real_recursive_parlist() {
    // The *unmodified* XMark description is recursive (text|parlist)*,
    // parlist → listitem → (text|parlist)*. The paper had to modify the
    // DTD; the extension handles it directly.
    let dtd = Dtd::parse(
        br#"<!DOCTYPE site [
        <!ELEMENT site (item*)>
        <!ELEMENT item (name, description)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT description (text | parlist)*>
        <!ELEMENT text (#PCDATA)>
        <!ELEMENT parlist (listitem*)>
        <!ELEMENT listitem (text | parlist)*>
        ]>"#,
    )
    .unwrap();
    assert!(dtd.is_recursive());
    let mut p = Prefilter::compile(
        &dtd,
        &PathSet::parse(&["/*", "/site/item/name#", "/site/item/description#"]).unwrap(),
    )
    .unwrap();
    let doc = b"<site><item><name>N1</name><description><text>t</text><parlist><listitem><parlist><listitem><text>deep</text></listitem></parlist></listitem></parlist></description></item></site>";
    let (out, _) = p.filter_to_vec(doc).unwrap();
    // description is #-kept: raw copy including the recursive parlist.
    assert_eq!(out, doc.to_vec());
}
