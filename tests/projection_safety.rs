//! Projection-safety (paper Def. 2 / Theorem 1): evaluating a query on the
//! *projected* document must give the same results as on the original.
//!
//! We assert something stronger than the paper's top-level equality
//! (Def. 1): byte-identical serialized result items, which holds because
//! the extraction flags result and value paths with `#`.

use smpx_core::Prefilter;
use smpx_datagen::{medline, xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_engine::{InMemEngine, StreamEngine};
use smpx_paths::extract::{extract_from_text, extract_paths};
use smpx_paths::xpath::XPath;

fn check_query(dtd: &Dtd, doc: &[u8], query_text: &str) {
    let query = XPath::parse(query_text).expect("query parses");
    let paths = extract_paths(&query);
    let mut pf = Prefilter::compile(dtd, &paths).expect("compile");
    let (projected, _) = pf.filter_to_vec(doc).expect("filter");

    // In-memory engine agreement.
    let engine = InMemEngine::unlimited();
    let on_original = engine.load(doc).expect("load original").eval(&query);
    let on_projected = engine.load(&projected).expect("load projected").eval(&query);
    assert_eq!(
        on_original,
        on_projected,
        "in-memory results differ for {query_text} ({} vs {} items)",
        on_original.len(),
        on_projected.len()
    );

    // Streaming engine agreement.
    let se = StreamEngine::new(query);
    let s_original = se.eval(doc).expect("stream original").items;
    let s_projected = se.eval(&projected).expect("stream projected").items;
    assert_eq!(s_original, s_projected, "stream results differ for {query_text}");

    // Cross-engine agreement on the original document.
    assert_eq!(on_original, s_original, "engines disagree for {query_text}");
}

#[test]
fn xmark_queries_are_projection_safe() {
    let doc = xmark::generate(GenOptions::sized(256 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    for q in [
        "/site/regions/australia/item/description",
        "/site/regions/australia/item/name/text()",
        "//australia//description",
        r#"/site/people/person[@id="person3"]/name"#,
        "/site/closed_auctions/closed_auction[price >= 40]/price",
        r#"/site//item[contains(description,"gold")]/name"#,
        "/site/open_auctions/open_auction/bidder/increase",
        "/site/people/person[profile/age >= 30]/emailaddress",
    ] {
        check_query(&dtd, &doc, q);
    }
}

#[test]
fn medline_queries_are_projection_safe() {
    let doc = medline::generate(GenOptions::sized(256 * 1024));
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).unwrap();
    for q in [
        "/MedlineCitationSet//CollectionTitle",
        r#"/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList"#,
        r#"/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject[LastName/text()="Hippocrates" or DatesAssociatedWithName="Oct2006"]/TitleAssociatedWithName"#,
        r#"/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]"#,
        r#"/MedlineCitationSet/MedlineCitation[contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted"#,
    ] {
        check_query(&dtd, &doc, q);
    }
}

#[test]
fn protein_queries_are_projection_safe() {
    use smpx_datagen::protein;
    let doc = protein::generate(GenOptions::sized(128 * 1024));
    let dtd = Dtd::parse(protein::PROTEIN_DTD.as_bytes()).unwrap();
    for q in [
        "/ProteinDatabase/ProteinEntry/protein/name",
        "//refinfo/authors/author/text()",
        r#"/ProteinDatabase/ProteinEntry[contains(keywords,"kinase")]/summary"#,
    ] {
        check_query(&dtd, &doc, q);
    }
}

/// The paper's motivating equality: query results on the Example 1 toy
/// document and its projection are indistinguishable.
#[test]
fn example1_projection_safe() {
    let dtd = Dtd::parse(
        br#"<!DOCTYPE site [
        <!ELEMENT site (regions)>
        <!ELEMENT regions (africa, asia, australia)>
        <!ELEMENT africa (item*)>
        <!ELEMENT asia (item*)>
        <!ELEMENT australia (item*)>
        <!ELEMENT item (location,name,payment,description,shipping,incategory+)>
        <!ELEMENT incategory EMPTY>
        <!ATTLIST incategory category ID #REQUIRED>
        ]>"#,
    )
    .unwrap();
    let doc: &[u8] = b"<site><regions><africa><item><location>United States</location><name>T V</name><payment>Creditcard</payment><description>15''LCD-FlatPanel</description><shipping>Within country</shipping><incategory category=\"3\"/></item></africa><asia/><australia><item ><location>Egypt</location><name>PDA</name><payment>Check</payment><description>Palm Zire 71</description><shipping/><incategory category=\"3\"/></item></australia></regions></site>";
    check_query(&dtd, doc, "//australia//description");
}

/// Safety also holds for queries that select nothing.
#[test]
fn empty_result_queries() {
    let doc = xmark::generate(GenOptions::sized(64 * 1024));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    check_query(&dtd, &doc, r#"/site/people/person[@id="nosuch"]/name"#);
    let paths = extract_from_text("/site/regions/africa/item/mailbox/mail/from").unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let (projected, _) = pf.filter_to_vec(&doc).unwrap();
    // Projected document is well-formed even when tiny.
    smpx_xml::check_well_formed(&projected).unwrap();
}
