//! End-to-end pipelines over the three generated datasets at realistic
//! (test-sized) volumes: SMP output equals the token-level oracle, is
//! well-formed, agrees between slice and streaming modes, and the
//! statistics stay in the paper's corridors.

use smpx_baselines::TokenProjector;
use smpx_core::Prefilter;
use smpx_datagen::{medline, protein, xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;

const SIZE: usize = 512 * 1024;

fn check_dataset(name: &str, dtd_text: &str, doc: &[u8], path_sets: &[&[&str]]) {
    let dtd = Dtd::parse(dtd_text.as_bytes()).unwrap();
    for (i, texts) in path_sets.iter().enumerate() {
        let paths = PathSet::parse(texts).unwrap();
        let mut pf =
            Prefilter::compile(&dtd, &paths).unwrap_or_else(|e| panic!("{name}[{i}] compile: {e}"));
        let (out, stats) = pf.filter_to_vec(doc).unwrap();

        // Oracle equality.
        let oracle = TokenProjector::new(&paths).project(doc).unwrap();
        assert_eq!(out, oracle, "{name}[{i}]: SMP and oracle disagree (paths {paths})");

        // Well-formed output.
        if !out.is_empty() {
            smpx_xml::check_well_formed(&out)
                .unwrap_or_else(|e| panic!("{name}[{i}]: output malformed: {e}"));
        }

        // The headline property: the scan inspects a strict subset of the
        // characters (paper corridor: 8–23%; we allow headroom for small
        // documents and dense queries).
        assert!(
            stats.char_comp_pct() < 65.0,
            "{name}[{i}]: inspected {:.1}%",
            stats.char_comp_pct()
        );
        assert!(stats.avg_shift() > 1.0, "{name}[{i}]: no skipping happened");

        // Streaming equivalence at the paper's chunk size and a hostile one.
        for chunk in [smpx_core::runtime::DEFAULT_CHUNK, 37] {
            let mut streamed = Vec::new();
            pf.filter_stream(doc, &mut streamed, chunk).unwrap();
            assert_eq!(streamed, out, "{name}[{i}] chunk {chunk}");
        }
    }
}

#[test]
fn xmark_end_to_end() {
    let doc = xmark::generate(GenOptions::sized(SIZE));
    check_dataset(
        "xmark",
        xmark::XMARK_DTD,
        &doc,
        &[
            &[
                "/*",
                "/site/regions/australia/item/name#",
                "/site/regions/australia/item/description#",
            ],
            &["/*", "/site//item/name#", "/site//item/description#"],
            &["/*", "/site/regions//item"],
            &["/*", "//description", "//annotation", "//emailaddress"],
            &["/*", "/site/people/person", "/site/people/person/name#"],
            &["/*", "/site/open_auctions/open_auction/bidder/increase#"],
        ],
    );
}

#[test]
fn medline_end_to_end() {
    let doc = medline::generate(GenOptions::sized(SIZE));
    check_dataset(
        "medline",
        medline::MEDLINE_DTD,
        &doc,
        &[
            &["/*", "/MedlineCitationSet//CollectionTitle#"],
            &[
                "/*",
                "/MedlineCitationSet//DataBank/DataBankName#",
                "/MedlineCitationSet//DataBank/AccessionNumberList#",
            ],
            &["/*", "/MedlineCitationSet//CopyrightInformation#"],
            &[
                "/*",
                "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo#",
                "/MedlineCitationSet/MedlineCitation/DateCompleted#",
            ],
        ],
    );
}

#[test]
fn protein_end_to_end() {
    let doc = protein::generate(GenOptions::sized(SIZE));
    check_dataset(
        "protein",
        protein::PROTEIN_DTD,
        &doc,
        &[
            &["/*", "/ProteinDatabase/ProteinEntry/protein/name#"],
            &["/*", "//refinfo/authors#"],
            &["/*", "/ProteinDatabase/ProteinEntry/sequence#"],
            &["/*", "//keyword"],
        ],
    );
}

/// Compiling once and filtering many documents must be deterministic and
/// reusable (lazy matcher tables persist across runs).
#[test]
fn prefilter_reuse_across_documents() {
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let paths = PathSet::parse(&["/*", "/site/regions/australia/item/name#"]).unwrap();
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let mut sizes = Vec::new();
    for seed in 0..3u64 {
        let doc = xmark::generate(GenOptions::sized(128 * 1024).with_seed(seed));
        let (a, _) = pf.filter_to_vec(&doc).unwrap();
        let (b, _) = pf.filter_to_vec(&doc).unwrap();
        assert_eq!(a, b, "same document must project identically");
        sizes.push(a.len());
    }
    assert!(sizes.iter().any(|&s| s > 0));
}

/// The paper's scale claim in miniature: the fraction of inspected
/// characters stays flat as the document grows.
#[test]
fn char_comp_ratio_is_scale_invariant() {
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let paths = PathSet::parse(&["/*", "/site/closed_auctions/closed_auction/price#"]).unwrap();
    let mut ratios = Vec::new();
    for size in [256 * 1024, 512 * 1024, 1024 * 1024] {
        let doc = xmark::generate(GenOptions::sized(size));
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        let (_, stats) = pf.filter_to_vec(&doc).unwrap();
        ratios.push(stats.char_comp_pct());
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 6.0, "the paper observes tiny deviations across sizes; got {ratios:?}");
}
