//! Differential source-matrix suite: the vectorized prefilter vs the
//! `SMPX_NO_SIMD=1` scalar fallback, crossed with every `DocSource`
//! backend — `SliceSource`, `MmapSource` over a temp file, and
//! `ReaderSource` swept across streaming chunk sizes.
//!
//! For identical documents every cell of the matrix must produce
//! **byte-identical output** and the **same match set** (`tokens_matched`,
//! `false_matches`, `initial_jump_chars`) — the fully-resident backends
//! exactly, and the reader at every chunk size around the SWAR-word (8),
//! SSE-lane (16) and AVX-lane (32) boundaries, so every window() split
//! point is exercised: a window ending one byte into a tag, inside a
//! quoted attribute value, between a `<` and its second byte, and so on.
//!
//! On `Char Comp.` accounting: the *scan layer* contributes identically
//! in both modes — tag-end and balanced-scan traversal is routed through
//! `bytes_scanned`, pinned byte-exactly by the `tag_scan_oracle` unit
//! tests in `crates/core`. The *searchers* intentionally do not: the
//! accelerated Boyer–Moore/Commentz–Walter report scan hops plus
//! verification comparisons while the scalar loops report the classic
//! per-alignment counts (see CHANGES.md, PR 2), so whole-run
//! `chars_compared` equality across modes is not a meaningful invariant
//! and is not asserted here.
//!
//! The mode toggle (`memscan::force_accel`) is process-global, so every
//! test in this binary serializes on [`mode_lock`].

mod common;

use common::{assert_valid, random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::runtime::source::{MmapSource, ReaderSource};
use smpx_core::{Prefilter, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::sync::{Mutex, OnceLock};

/// Chunk sizes around every lane boundary: 1, 2, word±1, lane±1, page.
const CHUNKS: &[usize] = &[1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 4096];

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes<T>(mut f: impl FnMut(bool) -> T) -> (T, T) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    let accel = f(true);
    memscan::force_accel(false);
    let scalar = f(false);
    memscan::force_accel(env_accel);
    (accel, scalar)
}

/// The observable a differential run pins: exact output bytes plus the
/// chunk- and mode-independent slice of the statistics.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    out: Vec<u8>,
    tokens_matched: u64,
    false_matches: u64,
    initial_jump_chars: u64,
    output_bytes: u64,
}

impl Observed {
    fn new(out: Vec<u8>, stats: &RunStats) -> Observed {
        Observed {
            out,
            tokens_matched: stats.tokens_matched,
            false_matches: stats.false_matches,
            initial_jump_chars: stats.initial_jump_chars,
            output_bytes: stats.output_bytes,
        }
    }
}

/// Full source-matrix sweep for one (dtd, paths, doc) in the current
/// mode: slice baseline, mmap over a temp file, reader over the same
/// file once, and the in-memory reader at every chunk size. Asserts
/// every backend ≡ slice inside, returns the slice observation.
fn sweep(pf: &mut Prefilter, doc: &[u8], label: &str) -> (Observed, RunStats) {
    let (slice_out, slice_stats) = pf.filter_to_vec(doc).expect("slice filter");
    let slice_obs = Observed::new(slice_out, &slice_stats);

    // MmapSource over a real file must be indistinguishable from the
    // borrowed slice (both fully resident, base 0).
    let tmp = TempDoc::new(doc);
    let mut out = Vec::new();
    let stats = pf
        .filter_source(MmapSource::open(tmp.path()).expect("map temp doc"), &mut out)
        .expect("mmap filter");
    assert_eq!(
        Observed::new(out, &stats),
        slice_obs,
        "{label}: mmap diverged from slice\ndoc: {}",
        String::from_utf8_lossy(doc)
    );

    // ReaderSource over the same file through the public filter_source
    // entry point (the chunk sweep below covers the boundary space with
    // in-memory readers).
    let file = std::fs::File::open(tmp.path()).expect("open temp doc");
    let mut out = Vec::new();
    let stats =
        pf.filter_source(ReaderSource::new(file, 64), &mut out).expect("file reader filter");
    assert_eq!(
        Observed::new(out, &stats),
        slice_obs,
        "{label}: file reader diverged from slice\ndoc: {}",
        String::from_utf8_lossy(doc)
    );

    for &chunk in CHUNKS {
        let mut out = Vec::new();
        let stats = pf.filter_stream(doc, &mut out, chunk).expect("stream filter");
        let stream_obs = Observed::new(out, &stats);
        assert_eq!(
            stream_obs,
            slice_obs,
            "{label}: reader(chunk={chunk}) diverged from slice\ndoc: {}",
            String::from_utf8_lossy(doc)
        );
    }
    (slice_obs, slice_stats)
}

#[test]
fn random_documents_agree_across_modes_and_chunks() {
    for seed in 0..100u64 {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let doc = random_doc(&dtd, &mut r);
        assert_valid(&dtd, &doc);
        let paths = random_paths(&dtd, &mut r);
        let (accel, scalar) = with_both_modes(|mode| {
            let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
            sweep(&mut pf, &doc, &format!("seed {seed} accel={mode}")).0
        });
        assert_eq!(
            accel,
            scalar,
            "seed {seed}: vectorized and scalar modes diverged\npaths: {paths}\ndoc: {}",
            String::from_utf8_lossy(&doc)
        );
    }
}

// --------------------------------------------------------------------------
// Recursive documents: the balanced scan crossing window boundaries.
// --------------------------------------------------------------------------

const REC_DTD: &[u8] =
    b"<!ELEMENT r (x|t)*> <!ELEMENT x (x?) > <!ELEMENT t (#PCDATA)> <!ATTLIST x a CDATA #IMPLIED>";

/// A nested `x` subtree whose tags are full of quote/slash/gt traps for
/// the windowed scans, plus bachelor forms.
fn push_x(doc: &mut Vec<u8>, r: &mut Rand, depth: usize) {
    match r.below(5) {
        0 | 1 if depth < 6 => {
            let attr = match r.below(5) {
                0 => " a=\"x>y\"",
                1 => " a='//>'",
                2 => " a=\"q\" b='>'",
                3 => " a='it\"s'",
                _ => "",
            };
            doc.extend_from_slice(format!("<x{attr}>").as_bytes());
            if r.chance(70) {
                push_x(doc, r, depth + 1);
            }
            doc.extend_from_slice(b"</x>");
        }
        2 => doc.extend_from_slice(b"<x/>"),
        3 => doc.extend_from_slice(b"<x a=\"/\" />"),
        _ => doc.extend_from_slice(b"<x></x>"),
    }
}

fn rec_doc(seed: u64) -> Vec<u8> {
    let mut r = Rand::new(seed);
    let mut doc = Vec::from(&b"<r>"[..]);
    for i in 0..2 + r.below(4) {
        push_x(&mut doc, &mut r, 0);
        doc.extend_from_slice(format!("<t>keep{i}</t>").as_bytes());
    }
    doc.extend_from_slice(b"</r>");
    doc
}

#[test]
fn recursive_documents_agree_across_modes_and_chunks() {
    let dtd = Dtd::parse(REC_DTD).expect("recursive DTD parses");
    for paths in [&["/*", "/r/t#"][..], &["/*", "//t#"], &["/*", "/r/x"]] {
        let paths = PathSet::parse(paths).expect("paths parse");
        for seed in 0..40u64 {
            let doc = rec_doc(seed);
            let (accel, scalar) = with_both_modes(|mode| {
                let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
                sweep(&mut pf, &doc, &format!("rec seed {seed} accel={mode}")).0
            });
            assert_eq!(
                accel,
                scalar,
                "rec seed {seed}: modes diverged\npaths: {paths}\ndoc: {}",
                String::from_utf8_lossy(&doc)
            );
        }
    }
}

#[test]
fn deep_recursion_streams_at_tiny_chunks() {
    // 120 levels with attribute traps: the balanced hop must keep its
    // depth across hundreds of window refills.
    let dtd = Dtd::parse(REC_DTD).expect("recursive DTD parses");
    let paths = PathSet::parse(&["/*", "/r/t#"]).expect("paths parse");
    let mut doc = Vec::from(&b"<r>"[..]);
    for i in 0..120 {
        doc.extend_from_slice(if i % 3 == 0 { b"<x a=\"d>e\">" } else { b"<x>" });
    }
    doc.extend_from_slice(b"<x/>");
    for _ in 0..120 {
        doc.extend_from_slice(b"</x>");
    }
    doc.extend_from_slice(b"<t>payload</t></r>");
    let (accel, scalar) = with_both_modes(|mode| {
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        sweep(&mut pf, &doc, &format!("deep accel={mode}")).0
    });
    assert_eq!(String::from_utf8_lossy(&accel.out), "<r><t>payload</t></r>");
    assert_eq!(accel, scalar);
}

// --------------------------------------------------------------------------
// Scan accounting: traversal bytes belong to Scan%, not Char Comp.
// --------------------------------------------------------------------------

#[test]
fn tag_traversal_bytes_are_scanned_not_compared_in_both_modes() {
    // One giant attribute (with '>' and '/' traps) dominates the document:
    // the tag-end scan must charge it to `bytes_scanned` in the vectorized
    // AND the scalar mode, leaving `Char Comp.` to genuine pattern
    // comparisons. Together Scan% + Char Comp. cover every byte the run
    // consumed; the attribute's share may never migrate into Char Comp.
    let dtd = Dtd::parse(REC_DTD).expect("recursive DTD parses");
    let paths = PathSet::parse(&["/*", "/r/t#"]).expect("paths parse");
    let attr: String = "ab>cd/e ".repeat(2048); // 16 KiB inside quotes
    let doc = format!("<r><x a=\"{attr}\"><x/></x><t>k</t></r>").into_bytes();
    let attr_len = attr.len() as u64;
    let ((accel_obs, accel_stats), (scalar_obs, scalar_stats)) = with_both_modes(|mode| {
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        sweep(&mut pf, &doc, &format!("bigattr accel={mode}"))
    });
    assert_eq!(accel_obs, scalar_obs);
    for (mode, stats) in [("accel", &accel_stats), ("scalar", &scalar_stats)] {
        assert!(
            stats.bytes_scanned >= attr_len,
            "{mode}: the quoted attribute must be scan-consumed \
             (bytes_scanned={} < attr={attr_len})",
            stats.bytes_scanned
        );
        assert!(
            stats.chars_compared < attr_len / 4,
            "{mode}: attribute bytes leaked into Char Comp. \
             (chars_compared={})",
            stats.chars_compared
        );
        // The consumed-byte budget is conserved: what the run inspected
        // (scan + comparisons) is bounded by the input, and covers at
        // least the dominant tag.
        assert!(stats.bytes_scanned + stats.chars_compared <= 2 * doc.len() as u64);
    }
}

// --------------------------------------------------------------------------
// Source backends: mmap parity on a realistic document, batch ≡ sequential.
// --------------------------------------------------------------------------

#[test]
fn mmap_equals_slice_on_xmark_tempfile() {
    // A realistic ~1 MiB XMark document on disk: the mapped run must be
    // indistinguishable from the in-memory slice run, stats included —
    // both are fully resident at base 0, so even the comparison and
    // scan counters must agree byte-for-byte.
    let _guard = mode_lock().lock().unwrap();
    let doc = smpx_datagen::xmark::generate(smpx_datagen::GenOptions::sized(1024 * 1024));
    let dtd = Dtd::parse(smpx_datagen::xmark::XMARK_DTD.as_bytes()).expect("XMark DTD");
    let paths = PathSet::parse(&[
        "/*",
        "/site/regions/australia/item/name#",
        "/site/regions/australia/item/description#",
    ])
    .expect("paths");
    let tmp = TempDoc::new(&doc);

    let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let (slice_out, slice_stats) = pf.filter_to_vec(&doc).expect("slice filter");

    let src = MmapSource::open(tmp.path()).expect("map XMark doc");
    if cfg!(all(unix, target_pointer_width = "64")) {
        assert!(src.is_mapped(), "expected a real mapping on 64-bit unix");
    }
    let mut mmap_out = Vec::new();
    let mmap_stats = pf.filter_source(src, &mut mmap_out).expect("mmap filter");

    assert_eq!(mmap_out, slice_out, "mmap output must be byte-identical to slice");
    assert_eq!(mmap_stats, slice_stats, "mmap stats must equal slice stats");
    assert!(slice_out.len() < doc.len(), "projection must actually shrink the doc");
}

#[test]
fn run_batch_equals_sequential_runs() {
    // One compiled automaton over a batch of documents must produce
    // exactly what one-at-a-time runs produce, for in-memory and for
    // mapped delivery alike.
    let _guard = mode_lock().lock().unwrap();
    let dtd = Dtd::parse(REC_DTD).expect("recursive DTD parses");
    let paths = PathSet::parse(&["/*", "/r/t#"]).expect("paths parse");
    let docs: Vec<Vec<u8>> = (0..6u64).map(rec_doc).collect();

    // Sequential reference: a fresh prefilter, one run per document.
    let mut seq_pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let sequential: Vec<Observed> = docs
        .iter()
        .map(|d| {
            let (out, stats) = seq_pf.filter_to_vec(d).expect("sequential filter");
            Observed::new(out, &stats)
        })
        .collect();

    // Batch over slices.
    let mut batch_pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let results = batch_pf
        .run_batch(docs.iter().map(|d| (smpx_core::SliceSource::new(d), Vec::new())))
        .expect("batch filter");
    assert_eq!(results.len(), docs.len());
    for (i, ((out, stats), want)) in results.into_iter().zip(&sequential).enumerate() {
        assert_eq!(&Observed::new(out, &stats), want, "slice batch doc {i} diverged");
    }

    // Batch over mapped temp files (matchers already warm — must not
    // change anything observable).
    let tmps: Vec<TempDoc> = docs.iter().map(|d| TempDoc::new(d)).collect();
    let results = batch_pf
        .run_batch(tmps.iter().map(|t| (MmapSource::open(t.path()).expect("map doc"), Vec::new())))
        .expect("mmap batch filter");
    for (i, ((out, stats), want)) in results.into_iter().zip(&sequential).enumerate() {
        assert_eq!(&Observed::new(out, &stats), want, "mmap batch doc {i} diverged");
    }
}
