//! Guard against silently-never-run property tests.
//!
//! The vendored proptest shim re-emits the attributes written at the
//! call site but does **not** add `#[test]` itself, so a property
//! declared inside `proptest! { ... }` without an explicit `#[test]`
//! compiles cleanly and simply never runs. This walked the repo once
//! already (a whole property file was dead for a PR), so this test
//! scans every workspace `.rs` file for `proptest!` blocks and fails —
//! naming file and function — when a property lacks the attribute.
//!
//! The scan is deliberately simple (line-oriented, brace counting with
//! `//` comments stripped); it only needs to be right about the shapes
//! `proptest!` accepts, and a false positive fails loudly with a
//! location rather than hiding anything.

use std::path::{Path, PathBuf};

/// A property `fn` found inside a `proptest!` block.
struct Property {
    file: PathBuf,
    line: usize,
    name: String,
    has_test_attr: bool,
}

fn workspace_rs_files() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    // `vendor/` is excluded on purpose: the shim's own docs and macro
    // definition spell `fn name(x in strategy)` shapes that are not
    // call sites.
    for top in ["crates", "tests", "src", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != "vendor" && !name.starts_with('.') {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Brace delta of one line with `//` comments stripped. Braces inside
/// string literals are assumed balanced (true of format strings, which
/// is all the suite uses); an unbalanced literal brace would skew the
/// count and fail this guard visibly, not silently.
fn brace_delta(line: &str) -> i32 {
    let code = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    code.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

/// Extract every property declared by `proptest!` blocks in `text`.
fn scan_file(path: &Path, text: &str, out: &mut Vec<Property>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        if !(trimmed.starts_with("proptest!") || trimmed.starts_with("proptest! {")) {
            i += 1;
            continue;
        }
        // Walk the block: depth is relative to the line that opened it;
        // property `fn`s sit at depth 1 (directly inside the macro).
        let mut depth = brace_delta(lines[i]);
        let mut pending_test_attr = false;
        i += 1;
        while i < lines.len() && depth > 0 {
            let t = lines[i].trim();
            if depth == 1 {
                if t.starts_with("#[test]") {
                    pending_test_attr = true;
                } else if let Some(rest) = t.strip_prefix("fn ") {
                    let name =
                        rest.split(|c: char| c == '(' || c.is_whitespace()).next().unwrap_or("?");
                    out.push(Property {
                        file: path.to_path_buf(),
                        line: i + 1,
                        name: name.to_string(),
                        has_test_attr: pending_test_attr,
                    });
                    pending_test_attr = false;
                } else if !t.is_empty()
                    && !t.starts_with("#[")
                    && !t.starts_with("#![")
                    && !t.starts_with("//")
                {
                    // Anything else (e.g. a closing brace of a property
                    // body at this depth) resets attribute tracking.
                    pending_test_attr = false;
                }
            }
            depth += brace_delta(lines[i]);
            i += 1;
        }
    }
}

#[test]
fn every_proptest_property_is_a_test() {
    let mut props = Vec::new();
    for file in workspace_rs_files() {
        let text = std::fs::read_to_string(&file).expect("read workspace source file");
        if text.contains("proptest!") {
            scan_file(&file, &text, &mut props);
        }
    }
    // Self-check: if the scanner regresses and stops seeing the suite's
    // known property files, that is a failure too — an empty scan must
    // never pass vacuously.
    assert!(
        props.len() >= 8,
        "proptest guard found only {} properties — scanner or suite regressed",
        props.len()
    );
    let missing: Vec<String> = props
        .iter()
        .filter(|p| !p.has_test_attr)
        .map(|p| format!("{}:{} fn {}", p.file.display(), p.line, p.name))
        .collect();
    assert!(
        missing.is_empty(),
        "properties without #[test] never run — the vendored proptest shim \
         does not add the attribute for you:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn guard_detects_a_missing_test_attribute() {
    // The guard guards itself: a synthetic block with one annotated and
    // one bare property must flag exactly the bare one. The macro name
    // is spelled in caps here so the workspace scan above does not trip
    // over this fixture's own source text.
    let sample = r#"
PROPTEST! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Annotated: runs.
    #[test]
    fn covered(x in 0u8..4) {
        assert!(x < 4);
    }

    /// Bare: would never run.
    fn forgotten(y in 0u8..4, z in 0u8..4) {
        assert!(y < 4 && z < 4);
    }
}
"#
    .replace("PROPTEST", "proptest");
    let mut props = Vec::new();
    scan_file(Path::new("sample.rs"), &sample, &mut props);
    let flags: Vec<(&str, bool)> =
        props.iter().map(|p| (p.name.as_str(), p.has_test_attr)).collect();
    assert_eq!(flags, vec![("covered", true), ("forgotten", false)]);
}
