//! End-to-end CLI coverage for the dynamic lifecycle mode and the
//! numeric-override regression fixes, driving the real `smpx` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

const DTD: &str =
    r#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

/// A scratch directory with the shared DTD and three documents; removed
/// on drop so reruns stay clean.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("smpx-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("a.dtd"), DTD).expect("write dtd");
        std::fs::write(dir.join("one.xml"), "<a><b>one</b></a>").expect("write doc");
        std::fs::write(dir.join("two.xml"), "<a><c><b>two</b></c></a>").expect("write doc");
        std::fs::write(dir.join("three.xml"), "<a><b>three</b><c><b>four</b></c></a>")
            .expect("write doc");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn smpx(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_smpx")).args(args).output().expect("run smpx")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn chunk_kb_overflow_is_rejected_as_usage_error() {
    let s = Scratch::new("chunk-overflow");
    // KiB -> bytes on this value overflows usize; the old code wrapped it
    // into a tiny/zero chunk in release and panicked in debug.
    let huge = (usize::MAX / 2).to_string();
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--query",
        "/a/b",
        "--chunk-kb",
        &huge,
        &s.path("one.xml"),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("usage:"), "stderr: {}", stderr_of(&out));
    assert!(out.stdout.is_empty(), "no output on a rejected invocation");
}

#[test]
fn chunk_kb_zero_and_garbage_are_rejected_but_valid_values_work() {
    let s = Scratch::new("chunk-valid");
    for bad in ["0", "forty", ""] {
        let out = smpx(&[
            "--dtd",
            &s.path("a.dtd"),
            "--query",
            "/a/b",
            "--chunk-kb",
            bad,
            &s.path("one.xml"),
        ]);
        assert_eq!(out.status.code(), Some(2), "--chunk-kb {bad:?} must be a usage error");
    }
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--query",
        "/a/b",
        "--chunk-kb",
        "4",
        &s.path("one.xml"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    assert_eq!(out.stdout, b"<a><b>one</b></a>");
}

#[test]
fn lifecycle_edits_apply_between_inputs_and_print_generations() {
    let s = Scratch::new("lifecycle");
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--query",
        "/a/b",
        &s.path("one.xml"),
        "--add-query",
        "//c",
        &s.path("two.xml"),
        "--remove-query",
        "0",
        &s.path("three.xml"),
        "--stats",
    ]);
    let err = stderr_of(&out);
    assert!(out.status.success(), "stderr: {err}");
    // one.xml under {q0=/a/b}; two.xml under {q0, q1=//c}; three.xml
    // under {q1} alone — its /a/b content is projected away.
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "<a><b>one</b></a><a><c><b>two</b></c></a><a><c><b>four</b></c></a>"
    );
    assert!(err.contains("generation 0 (1 live / 1 allocated queries)"), "stderr: {err}");
    assert!(err.contains("added query q1: //c"), "stderr: {err}");
    assert!(err.contains("generation 1 (2 live / 2 allocated queries)"), "stderr: {err}");
    assert!(err.contains("removed query q0"), "stderr: {err}");
    assert!(err.contains("generation 2 (1 live / 2 allocated queries)"), "stderr: {err}");
    // Verdicts stay in stable external ids: two.xml matches only the
    // added query, three.xml reports the removed id unmatched at width 2.
    assert!(err.contains("matched 1/1 queries [q0] (generation 0)"), "stderr: {err}");
    assert!(err.contains("matched 1/2 queries [q1] (generation 1)"), "stderr: {err}");
    assert!(err.contains("matched 1/2 queries [q1] (generation 2)"), "stderr: {err}");
    assert!(err.contains("final generation 2"), "stderr: {err}");
}

#[test]
fn lifecycle_rejects_bad_edits_and_paths_workloads() {
    let s = Scratch::new("lifecycle-errors");
    // Removing an id that was never allocated fails the run.
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--query",
        "/a/b",
        &s.path("one.xml"),
        "--remove-query",
        "9",
        &s.path("two.xml"),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("never registered"), "stderr: {}", stderr_of(&out));

    // Lifecycle edits need a --query seed; --paths has no query ids.
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--paths",
        "/a/b",
        "--add-query",
        "//c",
        &s.path("one.xml"),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--query seed"), "stderr: {}", stderr_of(&out));
}

#[test]
fn lifecycle_mode_works_pooled() {
    let s = Scratch::new("lifecycle-pooled");
    let out = smpx(&[
        "--dtd",
        &s.path("a.dtd"),
        "--query",
        "/a/b",
        "--threads",
        "4",
        &s.path("one.xml"),
        &s.path("three.xml"),
        "--add-query",
        "//c",
        "--remove-query",
        "0",
        &s.path("two.xml"),
        &s.path("three.xml"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    // Batch 1 under /a/b keeps b-content; batch 2 — after the back-to-back
    // add+remove swapped the workload to //c alone — keeps only
    // c-subtrees. (The add must precede the remove: dropping the last
    // live query is refused.)
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "<a><b>one</b></a><a><b>three</b></a><a><c><b>two</b></c></a><a><c><b>four</b></c></a>"
    );
}
