//! Property-based pipeline tests (proptest manages the case exploration;
//! the generators are seeded from proptest-drawn integers so failures
//! print a minimal reproducing seed).

mod common;

use common::{random_doc, random_dtd, random_paths, Rand};
use proptest::prelude::*;
use smpx_baselines::TokenProjector;
use smpx_core::Prefilter;
use smpx_engine::InMemEngine;
use smpx_paths::xpath::XPath;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The full pipeline invariant: SMP == oracle, output well-formed,
    /// stream == slice for a proptest-chosen chunk size.
    #[test]
    fn pipeline_invariants(seed in 0u64..1_000_000, chunk in 2usize..512) {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let doc = random_doc(&dtd, &mut r);
        let paths = random_paths(&dtd, &mut r);

        let oracle = TokenProjector::new(&paths).project(&doc).expect("oracle");
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let (smp, _) = pf.filter_to_vec(&doc).expect("filter");
        prop_assert_eq!(
            &smp, &oracle,
            "SMP vs oracle (seed {}, paths {})", seed, paths
        );
        if !smp.is_empty() {
            prop_assert!(smpx_xml::check_well_formed(&smp).is_ok());
        }
        let mut streamed = Vec::new();
        pf.filter_stream(&doc[..], &mut streamed, chunk).expect("stream");
        prop_assert_eq!(&streamed, &smp, "stream vs slice (chunk {})", chunk);
    }

    /// Projection-safety on random instances for simple structural queries:
    /// evaluating /root-level child paths gives identical results before
    /// and after projection when the query's paths were projected.
    #[test]
    fn random_projection_safety(seed in 0u64..200_000) {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let doc = random_doc(&dtd, &mut r);

        // Build a query from the DTD's actual structure: /root/child.
        let children: Vec<String> =
            dtd.effective_child_names(dtd.root()).into_iter().map(str::to_string).collect();
        prop_assume!(!children.is_empty());
        let child = &children[r.below(children.len())];
        let query_text = format!("/{}/{}", dtd.root(), child);
        let query = XPath::parse(&query_text).expect("query");
        let paths = smpx_paths::extract::extract_paths(&query);

        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let (projected, _) = pf.filter_to_vec(&doc).expect("filter");

        let engine = InMemEngine::unlimited();
        let a = engine.load(&doc).expect("orig").eval(&query);
        let b = engine.load(&projected).expect("proj").eval(&query);
        prop_assert_eq!(a, b, "projection-unsafe for {} (seed {})", query_text, seed);
    }
}
