//! Parallel ≡ sequential equivalence suite for the work-stealing batch
//! executor: `run_batch_parallel` against the sequential `run_batch` /
//! per-document reference across thread counts {1, 2, 8} (plus 0 = the
//! machine's parallelism) × delivery backends {slice, mmap, reader} ×
//! SIMD/scalar modes.
//!
//! What is pinned, per cell of that matrix:
//!
//! * **byte-identical sinks** — each document's projected bytes equal the
//!   sequential run's, in input order;
//! * **equal per-document match sets and stats** — full `RunStats`
//!   equality (for the reader backend both sides use the same chunk, so
//!   even the chunk-dependent stream counters must agree);
//! * **equal accumulated totals** — folding the per-document stats with
//!   `RunStats::accumulate` gives the same totals, independent of which
//!   worker completed what when.
//!
//! Plus error injection: a failing document cancels the batch, the
//! reported `BatchError` carries exactly that input's index (the CLI maps
//! it to the file name), and nothing is poisoned — the same frozen
//! automaton runs the next batch successfully.
//!
//! The SIMD/scalar toggle (`memscan::force_accel`) is process-global, so
//! every test in this binary serializes on [`mode_lock`].

mod common;

use common::{random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::runtime::source::{MmapSource, ReaderSource, SliceSource};
use smpx_core::{CoreError, Prefilter, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::sync::{Mutex, OnceLock};

const THREADS: &[usize] = &[0, 1, 2, 8];
const CHUNK: usize = 64;
const BATCH: usize = 9;

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes(mut f: impl FnMut(bool)) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    f(true);
    memscan::force_accel(false);
    f(false);
    memscan::force_accel(env_accel);
}

/// One fixture: a DTD, a path set, and a batch of valid documents.
struct Fixture {
    dtd: Dtd,
    paths: PathSet,
    docs: Vec<Vec<u8>>,
}

/// Random fixture from the shared generators: one schema, many documents.
fn random_fixture(seed: u64) -> Fixture {
    let mut r = Rand::new(seed);
    let dtd = random_dtd(&mut r);
    let paths = random_paths(&dtd, &mut r);
    let docs = (0..BATCH).map(|_| random_doc(&dtd, &mut r)).collect();
    Fixture { dtd, paths, docs }
}

/// Recursive fixture: nested subtrees with quote/slash/gt traps, so the
/// balanced scan and the tag-end scan both cross worker-owned windows.
fn recursive_fixture() -> Fixture {
    let dtd = Dtd::parse(
        b"<!ELEMENT r (x|t)*> <!ELEMENT x (x?)> <!ELEMENT t (#PCDATA)> \
          <!ATTLIST x a CDATA #IMPLIED>",
    )
    .expect("recursive DTD parses");
    let paths = PathSet::parse(&["/*", "/r/t#"]).expect("paths parse");
    let mut docs = Vec::new();
    for i in 0..BATCH {
        let mut doc = Vec::from(&b"<r>"[..]);
        for d in 0..=i {
            let attr = match d % 4 {
                0 => " a=\"x>y\"",
                1 => " a='//>'",
                2 => "",
                _ => " a='it\"s'",
            };
            doc.extend_from_slice(format!("<x{attr}>").as_bytes());
        }
        doc.extend_from_slice(b"<x/>");
        for _ in 0..=i {
            doc.extend_from_slice(b"</x>");
        }
        doc.extend_from_slice(format!("<t>payload{i}</t></r>").as_bytes());
        docs.push(doc);
    }
    Fixture { dtd, paths, docs }
}

/// Sequential reference over an owned-source-opening closure (the
/// borrowed slice backend is inlined at its call site instead — a
/// `SliceSource` borrows per document, which a single generic `S` cannot
/// express).
fn sequential<S: smpx_core::DocSource>(
    fx: &Fixture,
    mut open: impl FnMut(&[u8]) -> S,
) -> Vec<(Vec<u8>, RunStats)> {
    let mut pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");
    fx.docs
        .iter()
        .map(|d| {
            let mut out = Vec::new();
            let stats = pf.filter_source(open(d), &mut out).expect("sequential filter");
            (out, stats)
        })
        .collect()
}

/// Assert the parallel run equals the sequential reference per document
/// and in accumulated totals.
fn assert_equivalent(
    label: &str,
    threads: usize,
    got: Vec<(Vec<u8>, RunStats)>,
    want: &[(Vec<u8>, RunStats)],
) {
    assert_eq!(got.len(), want.len(), "{label} t={threads}: result count");
    let mut got_total = RunStats::default();
    let mut want_total = RunStats::default();
    for (i, ((go, gs), (wo, ws))) in got.iter().zip(want).enumerate() {
        assert_eq!(go, wo, "{label} t={threads} doc {i}: sink bytes diverged");
        assert_eq!(gs, ws, "{label} t={threads} doc {i}: stats diverged");
        got_total.accumulate(gs);
        want_total.accumulate(ws);
    }
    assert_eq!(got_total, want_total, "{label} t={threads}: accumulated totals diverged");
}

/// The full matrix for one fixture in the current SIMD/scalar mode.
fn sweep_fixture(fx: &Fixture, label: &str) {
    let pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");

    // Slice delivery.
    let want: Vec<(Vec<u8>, RunStats)> = {
        let mut seq_pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");
        fx.docs
            .iter()
            .map(|d| {
                let mut out = Vec::new();
                let stats = seq_pf
                    .filter_source(SliceSource::new(d), &mut out)
                    .expect("sequential slice filter");
                (out, stats)
            })
            .collect()
    };
    for &t in THREADS {
        let got = pf
            .run_batch_parallel(fx.docs.iter().map(|d| (SliceSource::new(d), Vec::new())), t)
            .expect("parallel slice batch");
        assert_equivalent(&format!("{label}/slice"), t, got, &want);
    }

    // Mmap delivery over real temp files.
    let tmps: Vec<TempDoc> = fx.docs.iter().map(|d| TempDoc::new(d)).collect();
    let want: Vec<(Vec<u8>, RunStats)> = {
        let mut seq_pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");
        tmps.iter()
            .map(|tmp| {
                let mut out = Vec::new();
                let stats = seq_pf
                    .filter_source(MmapSource::open(tmp.path()).expect("map doc"), &mut out)
                    .expect("sequential mmap filter");
                (out, stats)
            })
            .collect()
    };
    for &t in THREADS {
        let got = pf
            .run_batch_parallel(
                tmps.iter().map(|tmp| (MmapSource::open(tmp.path()).expect("map doc"), Vec::new())),
                t,
            )
            .expect("parallel mmap batch");
        assert_equivalent(&format!("{label}/mmap"), t, got, &want);
    }

    // Reader delivery (chunked window; same chunk on both sides, so even
    // the chunk-dependent stream counters must agree).
    let want = sequential(fx, |d| ReaderSource::new(std::io::Cursor::new(d.to_vec()), CHUNK));
    for &t in THREADS {
        let got = pf
            .run_batch_parallel(
                fx.docs.iter().map(|d| {
                    (ReaderSource::new(std::io::Cursor::new(d.clone()), CHUNK), Vec::new())
                }),
                t,
            )
            .expect("parallel reader batch");
        assert_equivalent(&format!("{label}/reader"), t, got, &want);
    }
}

#[test]
fn parallel_equals_sequential_across_backends_threads_and_modes() {
    for seed in [3u64, 11, 42] {
        let fx = random_fixture(seed);
        with_both_modes(|mode| sweep_fixture(&fx, &format!("seed {seed} accel={mode}")));
    }
}

#[test]
fn recursive_batch_equals_sequential_across_modes() {
    let fx = recursive_fixture();
    with_both_modes(|mode| sweep_fixture(&fx, &format!("recursive accel={mode}")));
}

#[test]
fn error_injection_cancels_names_the_input_and_poisons_nothing() {
    let _guard = mode_lock().lock().unwrap();
    let fx = recursive_fixture();
    let pf = Prefilter::compile(&fx.dtd, &fx.paths).expect("compile");
    let frozen = pf.freeze();

    // Doc 4 never closes its subtree: the balanced scan hits EOF.
    let mut docs = fx.docs.clone();
    docs[4] = b"<r><x><t>truncated</t>".to_vec();

    for &t in THREADS {
        let err = frozen
            .run_batch_parallel(docs.iter().map(|d| (SliceSource::new(d), Vec::new())), t)
            .expect_err("doc 4 is truncated");
        // The failing input is identified by its batch index — exactly
        // what the CLI needs to print the file name — and the display
        // carries it too.
        assert_eq!(err.index, 4, "t={t}");
        assert!(matches!(err.error, CoreError::UnexpectedEof { .. }), "t={t}: {}", err.error);
        assert!(err.to_string().contains("#4"), "t={t}: display {err}");

        // Nothing is poisoned: the same frozen automaton immediately runs
        // the clean batch, completely and correctly.
        let good = frozen
            .run_batch_parallel(fx.docs.iter().map(|d| (SliceSource::new(d), Vec::new())), t)
            .expect("clean batch after a cancelled one");
        assert_eq!(good.len(), fx.docs.len(), "t={t}");
        assert!(good.iter().all(|(out, _)| !out.is_empty()), "t={t}");
    }

    // Same story over mapped files: the error names the right shard.
    let tmps: Vec<TempDoc> = docs.iter().map(|d| TempDoc::new(d)).collect();
    let err = frozen
        .run_batch_parallel(
            tmps.iter().map(|tmp| (MmapSource::open(tmp.path()).expect("map doc"), Vec::new())),
            4,
        )
        .expect_err("mapped doc 4 is truncated");
    assert_eq!(err.index, 4);
}
