//! Shard ≡ sequential equivalence suite for intra-document parallelism
//! (`Prefilter::run_sharded`): one document split speculatively across
//! the work-stealing pool must reproduce the sequential run exactly.
//!
//! What is pinned, per cell of the matrix — shard widths {1, 2, 3, 8} ×
//! split thresholds (auto plus several forced sizes) × delivery backends
//! {slice, mmap, reader} × SIMD/scalar modes × single/multi-query:
//!
//! * **byte-identical projection output** — the stitched sink equals the
//!   sequential sink, byte for byte;
//! * **exact verdict counters** — `tokens_matched`, `match_events`,
//!   `output_bytes` and the multi-query verdict sets are equal (the
//!   stitched segments partition the sequential token sequence; only the
//!   search-effort counters may differ at segment boundaries, the same
//!   way `ReaderSource` stats are chunk-size-dependent);
//! * **engagement** — small forced shard sizes actually split
//!   (`RunStats::shards ≥ 2`), so the matrix never passes vacuously via
//!   the sequential fallback.
//!
//! Plus the adversarial split-point cases: record-open lookalikes inside
//! quoted attribute values at the split, shard boundaries landing inside
//! record tags and prefix-sharing sibling names, and documents with zero
//! safe splits (one giant record) falling back byte-identically.
//!
//! The SIMD/scalar toggle (`memscan::force_accel`) is process-global, so
//! every test in this binary serializes on [`mode_lock`].

mod common;

use common::{random_doc, random_dtd, random_paths, Rand, TempDoc};
use smpx_core::runtime::source::{MmapSource, ReaderSource, SliceSource};
use smpx_core::{MultiVerdict, Prefilter, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::memscan;
use std::sync::{Mutex, OnceLock};

const THREADS: &[usize] = &[1, 2, 3, 8];
/// Forced split thresholds in bytes; 0 = the auto-sizing rule.
const SHARD_BYTES: &[usize] = &[0, 48, 131, 400];
const CHUNK: usize = 64;

fn mode_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` once with the vectorized paths forced on and once forced off,
/// restoring the environment-selected mode afterwards.
fn with_both_modes(mut f: impl FnMut(bool)) {
    let _guard = mode_lock().lock().unwrap();
    let env_accel = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
    memscan::force_accel(true);
    f(true);
    memscan::force_accel(false);
    f(false);
    memscan::force_accel(env_accel);
}

/// The record-loop schema of the paper's Example 2, plus queries.
struct Fixture {
    dtd: Dtd,
    paths: PathSet,
    doc: Vec<u8>,
}

fn ex2_fixture(doc: Vec<u8>) -> Fixture {
    let dtd = Dtd::parse(b"<!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)>")
        .expect("EX2 DTD parses");
    let paths = PathSet::parse(&["/*", "/a/b#"]).expect("paths parse");
    Fixture { dtd, paths, doc }
}

fn record_doc(n: usize) -> Vec<u8> {
    let mut d = b"<a>".to_vec();
    for j in 0..n {
        d.extend_from_slice(format!("<c><b>x{j}</b></c><b>keep-{j}</b>").as_bytes());
    }
    d.extend_from_slice(b"</a>");
    d
}

fn compile(fx: &Fixture) -> Prefilter {
    Prefilter::compile(&fx.dtd, &fx.paths).expect("compile")
}

/// The exact observables: output bytes plus the counters the shard
/// protocol guarantees byte-for-byte. `input_bytes` is normalized to the
/// document length first — a hint-less reader's sequential run reports 0
/// where the sharded run (which materialized the document) knows the
/// real length; both normalize to the same value.
fn assert_exact(label: &str, doc_len: usize, got: (&[u8], &RunStats), want: (&[u8], &RunStats)) {
    let (go, gs) = got;
    let (wo, ws) = want;
    assert_eq!(go, wo, "{label}: projected bytes diverged");
    assert_eq!(gs.output_bytes, ws.output_bytes, "{label}: output_bytes");
    assert_eq!(gs.tokens_matched, ws.tokens_matched, "{label}: tokens_matched");
    assert_eq!(gs.match_events, ws.match_events, "{label}: match_events");
    let norm = |b: u64| if b == 0 { doc_len as u64 } else { b };
    assert_eq!(norm(gs.input_bytes), norm(ws.input_bytes), "{label}: input_bytes");
}

/// The full backend × threads × shard-size matrix for one fixture in the
/// current SIMD/scalar mode. `expect_split` additionally demands that
/// the forced small shard sizes really engaged the shard path.
fn sweep_fixture(fx: &Fixture, label: &str, expect_split: bool) {
    let doc = &fx.doc;

    // Slice delivery.
    let (want_out, want) = compile(fx).filter_to_vec(doc).expect("sequential slice");
    for &t in THREADS {
        for &sb in SHARD_BYTES {
            let (out, stats) = compile(fx)
                .run_sharded(SliceSource::new(doc), Vec::new(), t, sb)
                .expect("sharded slice");
            let cell = format!("{label}/slice t={t} sb={sb}");
            assert_exact(&cell, doc.len(), (&out, &stats), (&want_out, &want));
            if expect_split && t > 1 && sb != 0 {
                assert!(stats.shards >= 2, "{cell}: expected a real split, got {stats:?}");
            }
        }
    }

    // Mmap delivery over a real temp file.
    let tmp = TempDoc::new(doc);
    let want = {
        let mut out = Vec::new();
        let stats = compile(fx)
            .filter_source(MmapSource::open(tmp.path()).expect("map doc"), &mut out)
            .expect("sequential mmap");
        (out, stats)
    };
    for &t in THREADS {
        for &sb in SHARD_BYTES {
            let (out, stats) = compile(fx)
                .run_sharded(MmapSource::open(tmp.path()).expect("map doc"), Vec::new(), t, sb)
                .expect("sharded mmap");
            let cell = format!("{label}/mmap t={t} sb={sb}");
            assert_exact(&cell, doc.len(), (&out, &stats), (&want.0, &want.1));
        }
    }

    // Reader delivery (chunked window): the sharded run slurps the
    // stream to one resident buffer first, so the projection must still
    // be byte-identical to the chunked sequential pass.
    let want = {
        let mut out = Vec::new();
        let stats = compile(fx)
            .filter_source(ReaderSource::new(std::io::Cursor::new(doc.clone()), CHUNK), &mut out)
            .expect("sequential reader");
        (out, stats)
    };
    for &t in THREADS {
        for &sb in SHARD_BYTES {
            let (out, stats) = compile(fx)
                .run_sharded(
                    ReaderSource::new(std::io::Cursor::new(doc.clone()), CHUNK),
                    Vec::new(),
                    t,
                    sb,
                )
                .expect("sharded reader");
            let cell = format!("{label}/reader t={t} sb={sb}");
            assert_exact(&cell, doc.len(), (&out, &stats), (&want.0, &want.1));
        }
    }
}

#[test]
fn sharded_equals_sequential_across_backends_threads_and_modes() {
    let fx = ex2_fixture(record_doc(60));
    with_both_modes(|mode| sweep_fixture(&fx, &format!("records accel={mode}"), true));
}

#[test]
fn random_schemas_shard_equivalence() {
    // Random schemas need not have a record loop at all — the point is
    // that sharding is *always* equivalent, whether it engages, repairs
    // everything, or falls back.
    for seed in [7u64, 23, 51] {
        let mut r = Rand::new(seed);
        let dtd = random_dtd(&mut r);
        let paths = random_paths(&dtd, &mut r);
        // One larger document per schema: concatenating random bodies is
        // not valid against the schema, so grow via the generator's own
        // document and let small shard sizes force many candidates.
        let doc = random_doc(&dtd, &mut r);
        let fx = Fixture { dtd, paths, doc };
        with_both_modes(|mode| sweep_fixture(&fx, &format!("seed {seed} accel={mode}"), false));
    }
}

#[test]
fn multi_query_sharded_verdicts_match() {
    let dtd = Dtd::parse(b"<!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)>")
        .expect("EX2 DTD parses");
    let queries: Vec<PathSet> = [vec!["/*", "/a/b#"], vec!["/*", "/a/c/b#"], vec!["/*", "/a/c#"]]
        .iter()
        .map(|texts| PathSet::parse(texts).expect("query parses"))
        .collect();
    let doc = record_doc(48);
    let compile = || Prefilter::compile_multi(&dtd, &queries).expect("compile multi");

    let (want_out, want_verdict, want_stats): (Vec<u8>, MultiVerdict, RunStats) =
        compile().run_multi(SliceSource::new(&doc), Vec::new()).expect("sequential multi");
    assert!(want_verdict.matched_ids().len() >= 2, "fixture matches several queries");

    with_both_modes(|mode| {
        for &t in THREADS {
            for &sb in SHARD_BYTES {
                let (out, verdict, stats) = compile()
                    .run_sharded_multi(SliceSource::new(&doc), Vec::new(), t, sb)
                    .expect("sharded multi");
                let cell = format!("multi accel={mode} t={t} sb={sb}");
                assert_eq!(out, want_out, "{cell}: projected bytes diverged");
                assert_eq!(verdict, want_verdict, "{cell}: verdict diverged");
                assert_eq!(stats.tokens_matched, want_stats.tokens_matched, "{cell}");
                assert_eq!(stats.match_events, want_stats.match_events, "{cell}");
            }
        }
    });
}

#[test]
fn lookalike_split_candidates_are_repaired() {
    // Record-open lookalikes inside quoted attribute values: textual
    // split candidates the sequential frontier never crosses. Shard
    // entries landing on them must fail confirmation and be repaired.
    let mut doc = b"<a>".to_vec();
    for j in 0..32 {
        doc.extend_from_slice(
            format!("<b id=\"<b>fake{j}</b><c>\">real-{j}</b><c><b>y{j}</b></c>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</a>");
    let fx = ex2_fixture(doc);
    with_both_modes(|mode| {
        let (want_out, want) = compile(&fx).filter_to_vec(&fx.doc).expect("sequential");
        for &sb in &[16usize, 33, 64, 100, 257] {
            let (out, stats) = compile(&fx)
                .run_sharded(SliceSource::new(&fx.doc), Vec::new(), 4, sb)
                .expect("sharded");
            let cell = format!("lookalike accel={mode} sb={sb}");
            assert_exact(&cell, fx.doc.len(), (&out, &stats), (&want_out, &want));
        }
    });
}

#[test]
fn prefix_sharing_record_names_split_cleanly() {
    // `<b>` vs `<br>`: the candidate scan must not take a `<br` tag for
    // a `<b` record (tag-name boundary check), and boundaries landing
    // mid-tag must resynchronize at the next real record.
    let dtd = Dtd::parse(b"<!ELEMENT a (b|br)*> <!ELEMENT b (#PCDATA)> <!ELEMENT br (#PCDATA)>")
        .expect("prefix DTD parses");
    let paths = PathSet::parse(&["/*", "/a/b#"]).expect("paths parse");
    let mut doc = b"<a>".to_vec();
    for j in 0..40 {
        doc.extend_from_slice(format!("<br>noise-{j}</br><b>keep-{j}</b>").as_bytes());
    }
    doc.extend_from_slice(b"</a>");
    let fx = Fixture { dtd, paths, doc };
    with_both_modes(|mode| {
        let (want_out, want) = compile(&fx).filter_to_vec(&fx.doc).expect("sequential");
        for &t in THREADS {
            // 37 lands shard boundaries inside tags and text alike.
            for &sb in &[0usize, 37, 96] {
                let (out, stats) = compile(&fx)
                    .run_sharded(SliceSource::new(&fx.doc), Vec::new(), t, sb)
                    .expect("sharded");
                let cell = format!("prefix accel={mode} t={t} sb={sb}");
                assert_exact(&cell, fx.doc.len(), (&out, &stats), (&want_out, &want));
            }
        }
    });
}

#[test]
fn one_doc_batch_auto_routes_through_the_shard_path() {
    // The one-doc-batch dead spot: a single large document used to clamp
    // the pool to width 1. At or above the auto-shard threshold
    // `run_batch_parallel` now routes through the shard path — same
    // bytes, and `shards` records that the split really happened.
    let n = (smpx_core::DEFAULT_AUTO_SHARD_BYTES as usize / 28) + 1;
    let fx = ex2_fixture(record_doc(n));
    assert!(fx.doc.len() as u64 >= smpx_core::DEFAULT_AUTO_SHARD_BYTES);
    let (want_out, want) = compile(&fx).filter_to_vec(&fx.doc).expect("sequential");

    let got = compile(&fx)
        .run_batch_parallel(vec![(SliceSource::new(&fx.doc), Vec::new())], 4)
        .expect("one-doc parallel batch");
    let (out, stats) = &got[0];
    assert_exact("auto-route", fx.doc.len(), (out, stats), (&want_out, &want));
    assert!(stats.shards >= 2, "large one-doc batch must split: {stats:?}");

    // Below the threshold the batch path stays unsplit.
    let small = ex2_fixture(record_doc(64));
    let got = compile(&small)
        .run_batch_parallel(vec![(SliceSource::new(&small.doc), Vec::new())], 4)
        .expect("small one-doc parallel batch");
    assert_eq!(got[0].1.shards, 0, "small documents keep the plain batch path");
}

#[test]
fn zero_safe_split_documents_fall_back_byte_identically() {
    // One giant record: no crossing state ever repeats, so calibration
    // runs to completion and the "sharded" run *is* the sequential run.
    let mut doc = b"<a><b>".to_vec();
    doc.extend_from_slice(&vec![b'x'; 64 * 1024]);
    doc.extend_from_slice(b"</b></a>");
    let fx = ex2_fixture(doc);
    with_both_modes(|mode| {
        let (want_out, want) = compile(&fx).filter_to_vec(&fx.doc).expect("sequential");
        for &t in THREADS {
            let (out, stats) = compile(&fx)
                .run_sharded(SliceSource::new(&fx.doc), Vec::new(), t, 1024)
                .expect("sharded");
            assert_eq!(out, want_out, "giant accel={mode} t={t}");
            assert_eq!(stats, want, "giant accel={mode} t={t}: fallback stats must be exact");
            assert_eq!(stats.shards, 0, "giant accel={mode} t={t}: ran unsplit");
        }
    });
}
